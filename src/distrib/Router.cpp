//===- Router.cpp - Consistent-hash serving router ------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "distrib/Router.h"

#include "distrib/Wire.h"
#include "service/Protocol.h"
#include "support/Hashing.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace uspec;
using namespace uspec::distrib;

Router::Router(RouterConfig C) : Config(std::move(C)) {
  size_t N = Config.Replicas.size();
  Down = std::make_unique<std::atomic<bool>[]>(N ? N : 1);
  for (size_t I = 0; I < N; ++I)
    Down[I].store(false, std::memory_order_relaxed);
  // The ring is a pure function of (replica addresses, vnode count):
  // restarts and every router instance over the same fleet agree on
  // ownership. Removing a replica only reassigns the keys it owned — the
  // consistent-hashing property the stability test pins.
  Ring.reserve(N * Config.VirtualNodes);
  for (size_t I = 0; I < N; ++I) {
    uint64_t AddrHash = hashString(Config.Replicas[I]);
    for (unsigned V = 0; V < Config.VirtualNodes; ++V)
      Ring.push_back({hashValues(AddrHash, uint64_t(V)),
                      static_cast<uint32_t>(I)});
  }
  std::sort(Ring.begin(), Ring.end(), [](const RingPoint &A,
                                         const RingPoint &B) {
    return A.Point != B.Point ? A.Point < B.Point : A.Replica < B.Replica;
  });
}

size_t Router::ringBegin(std::string_view Program) const {
  uint64_t Key = hashString(Program);
  size_t Lo = 0, Hi = Ring.size();
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Ring[Mid].Point < Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo == Ring.size() ? 0 : Lo; // wrap past the last point
}

size_t Router::ownerOf(std::string_view Program) const {
  if (Ring.empty())
    return numReplicas();
  return Ring[ringBegin(Program)].Replica;
}

size_t Router::liveOwnerOf(std::string_view Program) const {
  if (Ring.empty())
    return numReplicas();
  size_t Start = ringBegin(Program);
  for (size_t Step = 0; Step < Ring.size(); ++Step) {
    const RingPoint &P = Ring[(Start + Step) % Ring.size()];
    if (!Down[P.Replica].load(std::memory_order_relaxed))
      return P.Replica;
  }
  return numReplicas();
}

void Router::markDown(size_t Replica) {
  if (Replica < numReplicas())
    Down[Replica].store(true, std::memory_order_relaxed);
}

void Router::markUp(size_t Replica) {
  if (Replica < numReplicas())
    Down[Replica].store(false, std::memory_order_relaxed);
}

bool Router::isDown(size_t Replica) const {
  return Replica < numReplicas() &&
         Down[Replica].load(std::memory_order_relaxed);
}

std::string Router::statsJson() const {
  std::string Out = "{\"replicas\":" + std::to_string(numReplicas());
  Out += ",\"down\":[";
  bool First = true;
  for (size_t I = 0; I < numReplicas(); ++I) {
    if (!isDown(I))
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += std::to_string(I);
  }
  Out += "],\"requests\":" + std::to_string(Requests.load());
  Out += ",\"forwarded\":" + std::to_string(Forwarded.load());
  Out += ",\"fanouts\":" + std::to_string(FanOuts.load());
  Out += ",\"broadcasts\":" + std::to_string(Broadcasts.load());
  Out += ",\"replica_down_errors\":" + std::to_string(ReplicaDownErrors.load());
  Out += ",\"bad_requests\":" + std::to_string(BadRequests.load());
  Out += '}';
  return Out;
}

namespace {

/// Recovers the byte-exact result payload from a serve envelope (the probe
/// requests below carry no id, so the envelope prefix is fixed).
bool stripOkEnvelope(const std::string &Response, std::string &Payload) {
  static const std::string Prefix = "{\"ok\":true,\"result\":";
  if (Response.size() <= Prefix.size() + 1 ||
      Response.compare(0, Prefix.size(), Prefix) != 0 ||
      Response.back() != '}')
    return false;
  Payload.assign(Response, Prefix.size(),
                 Response.size() - Prefix.size() - 1);
  return true;
}

} // namespace

std::string Router::fanOut(const std::string &Id, std::string_view TraceId,
                           bool Metrics) {
  FanOuts.fetch_add(1, std::memory_order_relaxed);
  // Probe *every* replica, including down ones: fan-out doubles as the
  // health re-probe, and a success clears the down flag so routing recovers
  // without operator action.
  std::string Probe =
      Metrics ? "{\"verb\":\"metrics\"}" : "{\"verb\":\"stats\"}";
  std::vector<std::pair<bool, std::string>> Results(numReplicas());
  for (size_t I = 0; I < numReplicas(); ++I) {
    std::string Response, Err;
    if (clientRoundTrip(Config.Replicas[I], Probe, Response, &Err)) {
      markUp(I);
      Results[I] = {true, std::move(Response)};
    } else {
      markDown(I);
      Results[I] = {false, std::move(Err)};
    }
  }

  if (Metrics) {
    // Aggregate exposition: the router's own counters, then each live
    // replica's text (their uspec_service_* series carry no instance label;
    // consumers scrape per-replica sockets when they need the split).
    std::string Text;
    auto Counter = [&Text](const char *Name, uint64_t V) {
      Text += "# TYPE ";
      Text += Name;
      Text += " counter\n";
      Text += Name;
      Text += ' ';
      Text += std::to_string(V);
      Text += '\n';
    };
    Counter("uspec_router_requests_total", Requests.load());
    Counter("uspec_router_forwarded_total", Forwarded.load());
    Counter("uspec_router_replica_down_errors_total",
            ReplicaDownErrors.load());
    Text += "# TYPE uspec_router_replicas_down gauge\n";
    size_t NumDown = 0;
    for (size_t I = 0; I < numReplicas(); ++I)
      NumDown += isDown(I) ? 1 : 0;
    Text += "uspec_router_replicas_down " + std::to_string(NumDown) + "\n";
    for (size_t I = 0; I < numReplicas(); ++I) {
      if (!Results[I].first)
        continue;
      service::JsonValue Doc;
      std::string Err;
      if (!service::parseJson(Results[I].second, Doc, &Err))
        continue;
      const service::JsonValue *Result = Doc.find("result");
      if (Result && Result->isString())
        Text += Result->StringValue;
    }
    std::string Payload;
    service::appendJsonString(Payload, Text);
    return service::okResponse(Id, Payload, TraceId);
  }

  std::string Payload = "{\"router\":" + statsJson() + ",\"replicas\":[";
  for (size_t I = 0; I < numReplicas(); ++I) {
    if (I)
      Payload += ',';
    Payload += "{\"addr\":";
    service::appendJsonString(Payload, Config.Replicas[I]);
    std::string Inner;
    if (Results[I].first && stripOkEnvelope(Results[I].second, Inner)) {
      Payload += ",\"ok\":true,\"stats\":" + Inner;
    } else {
      Payload += ",\"ok\":false";
    }
    Payload += '}';
  }
  Payload += "]}";
  return service::okResponse(Id, Payload, TraceId);
}

std::string Router::broadcastReload(const std::string &Line,
                                    const std::string &Id,
                                    std::string_view TraceId) {
  Broadcasts.fetch_add(1, std::memory_order_relaxed);
  // Forward the original request so a `path` member reaches every replica.
  // Each replica swaps independently (zero-downtime per PR 6); the
  // aggregate reports who confirmed.
  size_t Reloaded = 0;
  std::string Payload = "{\"replicas\":[";
  for (size_t I = 0; I < numReplicas(); ++I) {
    std::string Response, Err;
    bool Ok = clientRoundTrip(Config.Replicas[I], Line, Response, &Err) &&
              Response.find("\"ok\":true") != std::string::npos;
    if (Ok) {
      markUp(I);
      ++Reloaded;
    } else {
      markDown(I);
    }
    if (I)
      Payload += ',';
    Payload += "{\"addr\":";
    service::appendJsonString(Payload, Config.Replicas[I]);
    Payload += ",\"ok\":";
    Payload += Ok ? "true" : "false";
    Payload += '}';
  }
  Payload += "],\"reloaded\":" + std::to_string(Reloaded) + "}";
  if (numReplicas() != 0 && Reloaded == 0)
    return service::errorResponse(Id, "reload_failed",
                                  "no replica confirmed the reload", TraceId);
  return service::okResponse(Id, Payload, TraceId);
}

std::string Router::handleLine(const std::string &Line) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  service::Request Req;
  std::string Err;
  if (!service::parseRequest(Line, Req, &Err)) {
    BadRequests.fetch_add(1, std::memory_order_relaxed);
    return service::errorResponse(Req.Id, "bad_request", Err, Req.TraceId);
  }

  switch (Req.TheVerb) {
  case service::Verb::Stats:
    return fanOut(Req.Id, Req.TraceId, /*Metrics=*/false);
  case service::Verb::Metrics:
    return fanOut(Req.Id, Req.TraceId, /*Metrics=*/true);
  case service::Verb::Reload:
    return broadcastReload(Line, Req.Id, Req.TraceId);
  case service::Verb::Shutdown: {
    Broadcasts.fetch_add(1, std::memory_order_relaxed);
    for (size_t I = 0; I < numReplicas(); ++I) {
      std::string Response, E2;
      clientRoundTrip(Config.Replicas[I], "{\"verb\":\"shutdown\"}", Response,
                      &E2);
    }
    StopRequested.store(true, std::memory_order_release);
    return service::okResponse(Req.Id, "{\"stopping\":true}", Req.TraceId);
  }
  default:
    break;
  }

  // Program-carrying verbs (and `specs`, which routes by the empty key):
  // forward the raw line to the live ring owner, so the response — id echo,
  // trace id, result bytes — is exactly what a direct client would see.
  size_t R = liveOwnerOf(Req.Program);
  if (R >= numReplicas()) {
    ReplicaDownErrors.fetch_add(1, std::memory_order_relaxed);
    return service::errorResponse(
        Req.Id, "replica_down",
        "all " + std::to_string(numReplicas()) + " replicas down",
        Req.TraceId);
  }
  std::string Response;
  if (clientRoundTrip(Config.Replicas[R], Line, Response, &Err)) {
    Forwarded.fetch_add(1, std::memory_order_relaxed);
    return Response;
  }
  // Mark down *before* answering: the client's retry walks the ring past
  // this replica, which is the deterministic failover the tests pin.
  markDown(R);
  ReplicaDownErrors.fetch_add(1, std::memory_order_relaxed);
  return service::errorResponse(Req.Id, "replica_down",
                                "replica " + Config.Replicas[R] +
                                    " unreachable; marked down, retry routes "
                                    "to the next live owner",
                                Req.TraceId);
}

//===----------------------------------------------------------------------===//
// Socket serving (modeled on service::Server's accept loop)
//===----------------------------------------------------------------------===//

namespace {

bool sendAllBytes(int Fd, const char *Data, size_t Len) {
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::send(Fd, Data + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int Router::serveUnixSocket(const std::string &Path,
                            const volatile int *StopFlag) {
  std::string Err;
  Address Addr;
  Addr.Tcp = false;
  Addr.Path = Path;
  int ListenFd = wireListen(Addr, &Err);
  if (ListenFd < 0) {
    return 1;
  }

  std::mutex ConnMu;
  std::vector<int> ConnFds;
  std::vector<std::thread> Threads;

  auto Stopped = [&] {
    return (StopFlag && *StopFlag) ||
           StopRequested.load(std::memory_order_acquire);
  };

  while (!Stopped()) {
    int Client = wireAccept(ListenFd, static_cast<int>(Config.AcceptPollMs));
    if (Client == -1)
      continue; // poll timeout: re-check the stop flags
    if (Client < 0)
      break;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      ConnFds.push_back(Client);
    }
    Threads.emplace_back([this, Client, &ConnMu, &ConnFds] {
      std::string Buffer;
      char Chunk[65536];
      for (;;) {
        ssize_t N = ::recv(Client, Chunk, sizeof(Chunk), 0);
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break;
        Buffer.append(Chunk, static_cast<size_t>(N));
        size_t Pos;
        while ((Pos = Buffer.find('\n')) != std::string::npos) {
          std::string Line = Buffer.substr(0, Pos);
          Buffer.erase(0, Pos + 1);
          if (!Line.empty() && Line.back() == '\r')
            Line.pop_back();
          if (Line.empty())
            continue;
          std::string Response = handleLine(Line);
          Response += '\n';
          if (!sendAllBytes(Client, Response.data(), Response.size()))
            break;
        }
      }
      {
        std::lock_guard<std::mutex> Lock(ConnMu);
        ConnFds.erase(std::remove(ConnFds.begin(), ConnFds.end(), Client),
                      ConnFds.end());
      }
      ::close(Client);
    });
  }

  // Wake blocked readers so their threads observe EOF and exit.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : Threads)
    T.join();
  ::close(ListenFd);
  ::unlink(Path.c_str());
  return 0;
}
