//===- Router.cpp - Consistent-hash serving router ------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "distrib/Router.h"

#include "distrib/Wire.h"
#include "service/Protocol.h"
#include "support/EventLog.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"
#include "support/Trace.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace uspec;
using namespace uspec::distrib;

Router::Router(RouterConfig C) : Config(std::move(C)) {
  {
    struct timespec Ts;
    ::clock_gettime(CLOCK_REALTIME, &Ts);
    StartTimeUnix = static_cast<double>(Ts.tv_sec) +
                    static_cast<double>(Ts.tv_nsec) / 1e9;
    StartSteady = std::chrono::steady_clock::now();
  }
  size_t N = Config.Replicas.size();
  Down = std::make_unique<std::atomic<bool>[]>(N ? N : 1);
  for (size_t I = 0; I < N; ++I)
    Down[I].store(false, std::memory_order_relaxed);
  Warm.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Warm.push_back(std::make_unique<WarmSet>());
  Sup.resize(N);
  // The ring is a pure function of (replica addresses, vnode count):
  // restarts and every router instance over the same fleet agree on
  // ownership. Removing a replica only reassigns the keys it owned — the
  // consistent-hashing property the stability test pins — and re-adding it
  // restores the exact original assignment (the rejoin inverse).
  Ring.reserve(N * Config.VirtualNodes);
  for (size_t I = 0; I < N; ++I) {
    uint64_t AddrHash = hashString(Config.Replicas[I]);
    for (unsigned V = 0; V < Config.VirtualNodes; ++V)
      Ring.push_back({hashValues(AddrHash, uint64_t(V)),
                      static_cast<uint32_t>(I)});
  }
  std::sort(Ring.begin(), Ring.end(), [](const RingPoint &A,
                                         const RingPoint &B) {
    return A.Point != B.Point ? A.Point < B.Point : A.Replica < B.Replica;
  });
}

size_t Router::ringBegin(std::string_view Program) const {
  uint64_t Key = hashString(Program);
  size_t Lo = 0, Hi = Ring.size();
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Ring[Mid].Point < Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo == Ring.size() ? 0 : Lo; // wrap past the last point
}

size_t Router::ownerOf(std::string_view Program) const {
  if (Ring.empty())
    return numReplicas();
  return Ring[ringBegin(Program)].Replica;
}

size_t Router::liveOwnerOf(std::string_view Program) const {
  if (Ring.empty())
    return numReplicas();
  size_t Start = ringBegin(Program);
  for (size_t Step = 0; Step < Ring.size(); ++Step) {
    const RingPoint &P = Ring[(Start + Step) % Ring.size()];
    if (!Down[P.Replica].load(std::memory_order_relaxed))
      return P.Replica;
  }
  return numReplicas();
}

size_t Router::nextLiveOwnerAfter(std::string_view Program,
                                  size_t Exclude) const {
  if (Ring.empty())
    return numReplicas();
  size_t Start = ringBegin(Program);
  for (size_t Step = 0; Step < Ring.size(); ++Step) {
    const RingPoint &P = Ring[(Start + Step) % Ring.size()];
    if (P.Replica == Exclude ||
        Down[P.Replica].load(std::memory_order_relaxed))
      continue;
    return P.Replica;
  }
  return numReplicas();
}

void Router::markDown(size_t Replica) {
  if (Replica < numReplicas())
    Down[Replica].store(true, std::memory_order_relaxed);
}

void Router::markUp(size_t Replica) {
  if (Replica < numReplicas())
    Down[Replica].store(false, std::memory_order_relaxed);
}

bool Router::isDown(size_t Replica) const {
  return Replica < numReplicas() &&
         Down[Replica].load(std::memory_order_relaxed);
}

std::string Router::statsJson() const {
  std::string Out = "{\"replicas\":" + std::to_string(numReplicas());
  Out += ",\"down\":[";
  bool First = true;
  for (size_t I = 0; I < numReplicas(); ++I) {
    if (!isDown(I))
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += std::to_string(I);
  }
  Out += "],\"requests\":" + std::to_string(Requests.load());
  Out += ",\"forwarded\":" + std::to_string(Forwarded.load());
  Out += ",\"fanouts\":" + std::to_string(FanOuts.load());
  Out += ",\"broadcasts\":" + std::to_string(Broadcasts.load());
  Out += ",\"replica_down_errors\":" + std::to_string(ReplicaDownErrors.load());
  Out += ",\"bad_requests\":" + std::to_string(BadRequests.load());
  Out += ",\"hedged\":" + std::to_string(Hedged.load());
  Out += ",\"hedged_wins\":" + std::to_string(HedgedWins.load());
  Out += ",\"respawns\":" + std::to_string(Respawns.load());
  Out += ",\"rejoins\":" + std::to_string(Rejoins.load());
  Out += ",\"warm_replays\":" + std::to_string(WarmReplays.load());
  Out += ",\"probe_failures\":" + std::to_string(ProbeFailures.load());
  {
    double Uptime = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - StartSteady)
                        .count();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"uptime_s\":%.3f", Uptime);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ",\"start_time_unix\":%.3f",
                  StartTimeUnix);
    Out += Buf;
  }
  Out += '}';
  return Out;
}

namespace {

/// Recovers the byte-exact result payload from a serve envelope. The probe
/// requests below carry no id, so the envelope is either the fixed prefix
/// or — when the fan-out propagated a client trace id — that prefix after
/// a leading `"trace_id"` member.
bool stripOkEnvelope(const std::string &Response, std::string &Payload) {
  static const std::string Marker = "\"ok\":true,\"result\":";
  if (Response.size() <= Marker.size() + 2 || Response.front() != '{' ||
      Response.back() != '}')
    return false;
  size_t Pos;
  if (Response.compare(1, Marker.size(), Marker) == 0) {
    Pos = 1 + Marker.size();
  } else if (Response.compare(1, 11, "\"trace_id\":") == 0) {
    size_t At = Response.find("," + Marker, 12);
    if (At == std::string::npos)
      return false;
    Pos = At + 1 + Marker.size();
  } else {
    return false;
  }
  Payload.assign(Response, Pos, Response.size() - Pos - 1);
  return true;
}

bool responseOk(const std::string &Response) {
  return Response.find("\"ok\":true") != std::string::npos;
}

} // namespace

//===----------------------------------------------------------------------===//
// Warm-cache handoff
//===----------------------------------------------------------------------===//

void Router::recordHotLine(size_t Replica, const service::Request &Req,
                           const std::string &Line) {
  if (Config.WarmKeys == 0 || Replica >= Warm.size())
    return;
  // Key on (program, options), not the raw line: the same program under a
  // different id is the same cache entry on the replica.
  uint64_t Key = hashValues(hashString(Req.Program),
                            Req.Coverage ? 1ull : 0ull);
  WarmSet &W = *Warm[Replica];
  std::lock_guard<std::mutex> Lock(W.Mu);
  for (auto It = W.Lru.begin(); It != W.Lru.end(); ++It) {
    if (It->Key == Key) {
      W.Lru.splice(W.Lru.begin(), W.Lru, It); // bump recency
      return;
    }
  }
  W.Lru.push_front({Key, Line});
  while (W.Lru.size() > Config.WarmKeys)
    W.Lru.pop_back();
}

size_t Router::replayWarmKeys(size_t Replica) {
  if (Config.WarmKeys == 0 || Replica >= Warm.size())
    return 0;
  std::vector<std::string> Lines;
  {
    WarmSet &W = *Warm[Replica];
    std::lock_guard<std::mutex> Lock(W.Mu);
    Lines.reserve(W.Lru.size());
    for (const HotEntry &E : W.Lru)
      Lines.push_back(E.Line);
  }
  size_t Replayed = 0;
  for (const std::string &Line : Lines) {
    std::string Response, Err;
    if (clientRoundTrip(Config.Replicas[Replica], Line, Response, &Err))
      ++Replayed;
  }
  WarmReplays.fetch_add(Replayed, std::memory_order_relaxed);
  return Replayed;
}

void Router::noteReplicaDown(size_t Replica, const char *Cause) {
  if (Replica >= numReplicas())
    return;
  bool Was = isDown(Replica);
  markDown(Replica);
  if (!Was && events::enabled())
    events::emit("replica_down", {{"replica", std::to_string(Replica)},
                                  {"addr", Config.Replicas[Replica]},
                                  {"cause", Cause}});
}

void Router::rejoinReplica(size_t Replica, const char *Via) {
  size_t Replayed = replayWarmKeys(Replica);
  if (events::enabled())
    events::emit("warm_replay", {{"replica", std::to_string(Replica)},
                                 {"replayed", std::to_string(Replayed)},
                                 {"via", Via}});
  markUp(Replica);
  Rejoins.fetch_add(1, std::memory_order_relaxed);
  if (events::enabled()) {
    events::emit("replica_up", {{"replica", std::to_string(Replica)},
                                {"addr", Config.Replicas[Replica]}});
    events::emit("rejoin", {{"replica", std::to_string(Replica)},
                            {"via", Via}});
  }
}

//===----------------------------------------------------------------------===//
// Supervisor: probe → respawn (backoff) → warm replay → rejoin
//===----------------------------------------------------------------------===//

/// Probe line for replica \p I. Probes carry a router-minted trace id so a
/// traced replica's request-lifecycle span attributes probe traffic to the
/// supervisor rather than to an anonymous client.
static std::string probeLineFor(size_t I) {
  return "{\"verb\":\"stats\",\"trace_id\":\"router-probe-" +
         std::to_string(I) + "\"}";
}

bool Router::recoverReplica(size_t Replica) {
  if (Replica >= numReplicas())
    return false;
  std::string Response, Err;
  bool ProbeOk =
      clientRoundTrip(Config.Replicas[Replica], probeLineFor(Replica),
                      Response, &Err) &&
      responseOk(Response);
  if (!ProbeOk) {
    noteReplicaDown(Replica, "recover_probe");
    return false;
  }
  if (isDown(Replica)) {
    // Ring re-add discipline: replay the hot set BEFORE taking traffic, so
    // the rejoined replica serves warm from its first routed request.
    rejoinReplica(Replica, "recover");
    std::lock_guard<std::mutex> Lock(SupMu);
    Sup[Replica].Attempts = 0;
  }
  return true;
}

void Router::spawnReplica(size_t Replica) {
  std::string Cmd = Config.RespawnCmd;
  const std::string Placeholder = "{socket}";
  for (size_t Pos = 0;
       (Pos = Cmd.find(Placeholder, Pos)) != std::string::npos;) {
    Cmd.replace(Pos, Placeholder.size(), Config.Replicas[Replica]);
    Pos += Config.Replicas[Replica].size();
  }
  // Double fork: the grandchild execs and is orphaned to init, so the
  // router never accumulates zombies and never installs a SIGCHLD handler
  // (which would break popen/pclose in embedding processes).
  pid_t Child = ::fork();
  if (Child == 0) {
    pid_t Grand = ::fork();
    if (Grand == 0) {
      // Don't leak the router's listen/connection fds into the replica.
      for (int Fd = 3; Fd < 256; ++Fd)
        ::close(Fd);
      ::execl("/bin/sh", "sh", "-c", Cmd.c_str(), (char *)nullptr);
      ::_exit(127);
    }
    ::_exit(Grand < 0 ? 126 : 0);
  }
  if (Child > 0) {
    int Status = 0;
    ::waitpid(Child, &Status, 0);
  }
}

void Router::superviseTick() {
  using Clock = std::chrono::steady_clock;
  for (size_t I = 0; I < numReplicas(); ++I) {
    // A shutdown broadcast must never race a respawn back to life.
    if (StopRequested.load(std::memory_order_acquire))
      return;
    // Probe (fault site `router.probe`: soft/throw = this probe fails,
    // kill = the router dies at exactly this point).
    bool ProbeOk = false;
    try {
      if (!USPEC_FAULT_SOFT("router.probe")) {
        std::string Response, Err;
        ProbeOk = clientRoundTrip(Config.Replicas[I], probeLineFor(I),
                                  Response, &Err) &&
                  responseOk(Response);
      }
    } catch (const FaultInjected &) {
      ProbeOk = false;
    }

    if (ProbeOk) {
      if (isDown(I))
        rejoinReplica(I, "supervisor");
      std::lock_guard<std::mutex> Lock(SupMu);
      Sup[I].Attempts = 0;
      continue;
    }

    ProbeFailures.fetch_add(1, std::memory_order_relaxed);
    if (events::enabled())
      events::emit("probe_failure", {{"replica", std::to_string(I)},
                                     {"addr", Config.Replicas[I]}});
    noteReplicaDown(I, "probe");
    if (Config.RespawnCmd.empty())
      continue;

    // Deterministic seeded backoff between respawn attempts: attempt k of
    // replica i waits retryDelayMs(k, hash(seed, i)) — the same seed
    // reproduces the same schedule. The first attempt is immediate.
    auto Now = Clock::now();
    {
      std::lock_guard<std::mutex> Lock(SupMu);
      SupState &St = Sup[I];
      if (St.Attempts != 0 && Now < St.NextRespawn)
        continue;
      uint64_t Delay = service::retryDelayMs(
          St.Attempts, hashValues(Config.RespawnSeed, uint64_t(I)));
      St.NextRespawn = Now + std::chrono::milliseconds(Delay);
      ++St.Attempts;
    }
    Respawns.fetch_add(1, std::memory_order_relaxed);
    if (events::enabled()) {
      unsigned Attempt;
      {
        std::lock_guard<std::mutex> Lock(SupMu);
        Attempt = Sup[I].Attempts;
      }
      events::emit("respawn", {{"replica", std::to_string(I)},
                               {"addr", Config.Replicas[I]},
                               {"attempt", std::to_string(Attempt)}});
    }
    // Fault site `router.respawn`: soft/throw = this attempt fails (the
    // backoff keeps advancing), kill = the router dies here.
    try {
      if (USPEC_FAULT_SOFT("router.respawn"))
        continue;
    } catch (const FaultInjected &) {
      continue;
    }
    spawnReplica(I);
  }
}

//===----------------------------------------------------------------------===//
// Fan-out / broadcast
//===----------------------------------------------------------------------===//

std::string Router::fanOut(const std::string &Id, std::string_view TraceId,
                           bool Metrics) {
  FanOuts.fetch_add(1, std::memory_order_relaxed);
  // Probe *every* replica, including down ones: fan-out doubles as the
  // health re-probe, and a success re-adds the replica through the warm
  // rejoin path so routing recovers without operator action.
  std::string Probe =
      Metrics ? "{\"verb\":\"metrics\"}" : "{\"verb\":\"stats\"}";
  if (!TraceId.empty()) {
    // Propagate the client's trace id onto every probe leg, so replica-side
    // request spans for this fan-out stitch under the same trace.
    Probe.pop_back();
    Probe += ",\"trace_id\":";
    service::appendJsonString(Probe, TraceId);
    Probe += '}';
  }
  std::vector<std::pair<bool, std::string>> Results(numReplicas());
  for (size_t I = 0; I < numReplicas(); ++I) {
    std::string Response, Err;
    if (clientRoundTrip(Config.Replicas[I], Probe, Response, &Err)) {
      if (isDown(I)) {
        // Same rejoin discipline as the supervisor: warm replay before the
        // replica takes traffic again.
        rejoinReplica(I, "fanout");
      }
      Results[I] = {true, std::move(Response)};
    } else {
      noteReplicaDown(I, "fanout_probe");
      Results[I] = {false, std::move(Err)};
    }
  }

  if (Metrics) {
    // Aggregate exposition: the router's own counters, then each live
    // replica's text (their uspec_service_* series carry no instance label;
    // consumers scrape per-replica sockets when they need the split).
    std::string Text;
    auto Counter = [&Text](const char *Name, uint64_t V) {
      Text += "# TYPE ";
      Text += Name;
      Text += " counter\n";
      Text += Name;
      Text += ' ';
      Text += std::to_string(V);
      Text += '\n';
    };
    Counter("uspec_router_requests_total", Requests.load());
    Counter("uspec_router_forwarded_total", Forwarded.load());
    Counter("uspec_router_replica_down_errors_total",
            ReplicaDownErrors.load());
    Counter("uspec_router_hedged_total", Hedged.load());
    Counter("uspec_router_hedged_wins_total", HedgedWins.load());
    Counter("uspec_router_respawns_total", Respawns.load());
    Counter("uspec_router_rejoins_total", Rejoins.load());
    Counter("uspec_router_warm_replays_total", WarmReplays.load());
    size_t NumDown = 0;
    for (size_t I = 0; I < numReplicas(); ++I)
      NumDown += isDown(I) ? 1 : 0;
    Text += "# TYPE uspec_router_replicas_down gauge\n";
    Text += "uspec_router_replicas_down " + std::to_string(NumDown) + "\n";
    Text += "# TYPE uspec_router_replicas_up gauge\n";
    Text += "uspec_router_replicas_up " +
            std::to_string(numReplicas() - NumDown) + "\n";
    // Fleet process start: the minimum of the router's own start and every
    // live replica's uspec_process_start_time_seconds — one fleet-level
    // gauge, with the per-replica series dropped from the concatenation
    // below so the aggregate exposition names it exactly once.
    static const std::string StartSeries = "uspec_process_start_time_seconds";
    double MinStart = StartTimeUnix;
    std::vector<std::string> ReplicaTexts(numReplicas());
    for (size_t I = 0; I < numReplicas(); ++I) {
      if (!Results[I].first)
        continue;
      service::JsonValue Doc;
      std::string Err;
      if (!service::parseJson(Results[I].second, Doc, &Err))
        continue;
      const service::JsonValue *Result = Doc.find("result");
      if (!Result || !Result->isString())
        continue;
      const std::string &Exp = Result->StringValue;
      std::string Kept;
      Kept.reserve(Exp.size());
      for (size_t Pos = 0; Pos < Exp.size();) {
        size_t Nl = Exp.find('\n', Pos);
        if (Nl == std::string::npos)
          Nl = Exp.size() - 1;
        std::string_view LineView(Exp.data() + Pos, Nl - Pos + 1);
        if (LineView.substr(0, StartSeries.size() + 1) ==
            StartSeries + " ") {
          double V = std::strtod(Exp.c_str() + Pos + StartSeries.size() + 1,
                                 nullptr);
          if (V > 0 && V < MinStart)
            MinStart = V;
        } else if (LineView.find(StartSeries) == std::string_view::npos) {
          Kept.append(LineView.data(), LineView.size());
        }
        Pos = Nl + 1;
      }
      ReplicaTexts[I] = std::move(Kept);
    }
    Text += "# TYPE " + StartSeries + " gauge\n";
    {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.9g", MinStart);
      Text += StartSeries + " " + Buf + "\n";
    }
    for (size_t I = 0; I < numReplicas(); ++I)
      Text += ReplicaTexts[I];
    std::string Payload;
    service::appendJsonString(Payload, Text);
    return service::okResponse(Id, Payload, TraceId);
  }

  std::string Payload = "{\"router\":" + statsJson() + ",\"replicas\":[";
  for (size_t I = 0; I < numReplicas(); ++I) {
    if (I)
      Payload += ',';
    Payload += "{\"addr\":";
    service::appendJsonString(Payload, Config.Replicas[I]);
    // Health read at aggregation time, per replica: a replica marked down
    // by a concurrent forward *after* its probe above is reported
    // "down":true here instead of being silently listed as healthy.
    Payload += ",\"down\":";
    Payload += isDown(I) ? "true" : "false";
    std::string Inner;
    if (Results[I].first && stripOkEnvelope(Results[I].second, Inner)) {
      Payload += ",\"ok\":true,\"stats\":" + Inner;
    } else {
      Payload += ",\"ok\":false";
    }
    Payload += '}';
  }
  Payload += "]}";
  return service::okResponse(Id, Payload, TraceId);
}

std::string Router::broadcastReload(const std::string &Line,
                                    const std::string &Id,
                                    std::string_view TraceId) {
  Broadcasts.fetch_add(1, std::memory_order_relaxed);
  // Forward the original request so a `path` member reaches every replica.
  // Each replica swaps independently (zero-downtime per PR 6); the
  // aggregate reports who confirmed. After a confirmed swap the replica's
  // cache partition is effectively cold (new-generation keys), so its warm
  // set is replayed — the handoff that keeps a swapped fleet warm.
  size_t Reloaded = 0;
  std::string Payload = "{\"replicas\":[";
  for (size_t I = 0; I < numReplicas(); ++I) {
    std::string Response, Err;
    bool Ok = clientRoundTrip(Config.Replicas[I], Line, Response, &Err) &&
              responseOk(Response);
    if (Ok) {
      replayWarmKeys(I);
      markUp(I);
      ++Reloaded;
    } else {
      markDown(I);
    }
    if (I)
      Payload += ',';
    Payload += "{\"addr\":";
    service::appendJsonString(Payload, Config.Replicas[I]);
    Payload += ",\"ok\":";
    Payload += Ok ? "true" : "false";
    Payload += '}';
  }
  Payload += "],\"reloaded\":" + std::to_string(Reloaded) + "}";
  if (events::enabled())
    events::emit("reload", {{"reloaded", std::to_string(Reloaded)},
                            {"replicas", std::to_string(numReplicas())}});
  if (numReplicas() != 0 && Reloaded == 0)
    return service::errorResponse(Id, "reload_failed",
                                  "no replica confirmed the reload", TraceId);
  return service::okResponse(Id, Payload, TraceId);
}

//===----------------------------------------------------------------------===//
// Forwarding (plain + hedged)
//===----------------------------------------------------------------------===//

unsigned Router::hedgeDelayMs() const {
  if (Config.HedgeAuto) {
    telemetry::HistogramSnapshot Snap = ForwardLatency.snapshot();
    if (Snap.Count >= 32) {
      double P95Ms = Snap.percentileSeconds(0.95) * 1e3;
      if (P95Ms < 1)
        P95Ms = 1;
      if (P95Ms > 1000)
        P95Ms = 1000;
      return static_cast<unsigned>(P95Ms);
    }
    return Config.HedgeMs ? Config.HedgeMs : 50;
  }
  return Config.HedgeMs;
}

namespace {

/// Shared slots for one hedged request. The handler thread owns decisions;
/// the two round-trip threads only deposit results here, so the loser can
/// be safely detached past the handler's (and even the Router's) lifetime.
struct HedgeState {
  std::mutex Mu;
  std::condition_variable Cv;
  unsigned DoneMask = 0;
  bool Ok[2] = {false, false};
  std::string Response[2];
};

void launchLeg(const std::shared_ptr<HedgeState> &St, unsigned Slot,
               std::string Addr, std::string Line) {
  std::thread([St, Slot, Addr = std::move(Addr), Line = std::move(Line)] {
    std::string Response, Err;
    bool Ok = clientRoundTrip(Addr, Line, Response, &Err);
    std::lock_guard<std::mutex> Lock(St->Mu);
    St->Ok[Slot] = Ok;
    St->Response[Slot] = std::move(Response);
    St->DoneMask |= 1u << Slot;
    St->Cv.notify_all();
  }).detach();
}

/// The hedge leg carries `"no_cache":true`, the dedup rule: a non-owner
/// replica computes the answer but never inserts it into its cache, so the
/// shared-nothing partition of the fingerprint keyspace stays clean.
std::string hedgeLineFor(const std::string &Line) {
  size_t End = Line.find_last_of('}');
  if (End == std::string::npos)
    return Line;
  return Line.substr(0, End) + ",\"no_cache\":true}";
}

} // namespace

std::string Router::forwardHedged(const service::Request &Req,
                                  const std::string &Line, size_t Primary,
                                  size_t Secondary, unsigned DelayMs) {
  TraceSpan Span("router.forward");
  if (Span.active()) {
    Span.arg("replica", std::to_string(Primary));
    Span.arg("hedge_replica", std::to_string(Secondary));
    if (!Req.TraceId.empty())
      Span.arg("trace_id", Req.TraceId);
  }
  auto Start = std::chrono::steady_clock::now();
  auto St = std::make_shared<HedgeState>();
  launchLeg(St, 0, Config.Replicas[Primary], Line);

  std::unique_lock<std::mutex> Lock(St->Mu);
  bool PrimaryDone = St->Cv.wait_for(
      Lock, std::chrono::milliseconds(DelayMs),
      [&] { return (St->DoneMask & 1u) != 0; });

  if (PrimaryDone && St->Ok[0]) {
    std::string Response = std::move(St->Response[0]);
    Lock.unlock();
    Forwarded.fetch_add(1, std::memory_order_relaxed);
    ForwardLatency.recordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count());
    recordHotLine(Primary, Req, Line);
    return Response;
  }

  // Primary slow (or already failed): fire the hedge at the next live ring
  // owner and take the first byte-identical success.
  Hedged.fetch_add(1, std::memory_order_relaxed);
  if (events::enabled())
    events::emit("hedge_fired", {{"primary", std::to_string(Primary)},
                                 {"secondary", std::to_string(Secondary)},
                                 {"trace_id", Req.TraceId}});
  launchLeg(St, 1, Config.Replicas[Secondary], hedgeLineFor(Line));
  St->Cv.wait(Lock, [&] {
    // Wake when either leg succeeded or both finished.
    if (((St->DoneMask & 1u) && St->Ok[0]) ||
        ((St->DoneMask & 2u) && St->Ok[1]))
      return true;
    return St->DoneMask == 3u;
  });

  bool PrimaryFinished = (St->DoneMask & 1u) != 0;
  bool SecondaryFinished = (St->DoneMask & 2u) != 0;
  // First success wins. When both are in, prefer the primary (owner) so
  // its cache entry is the one recorded hot — the answers are
  // byte-identical either way.
  if (PrimaryFinished && St->Ok[0]) {
    std::string Response = std::move(St->Response[0]);
    Lock.unlock();
    Forwarded.fetch_add(1, std::memory_order_relaxed);
    ForwardLatency.recordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count());
    recordHotLine(Primary, Req, Line);
    return Response;
  }
  if (SecondaryFinished && St->Ok[1]) {
    std::string Response = std::move(St->Response[1]);
    bool PrimaryFailed = PrimaryFinished && !St->Ok[0];
    Lock.unlock();
    Forwarded.fetch_add(1, std::memory_order_relaxed);
    HedgedWins.fetch_add(1, std::memory_order_relaxed);
    if (events::enabled())
      events::emit("hedge_won", {{"secondary", std::to_string(Secondary)},
                                 {"trace_id", Req.TraceId}});
    ForwardLatency.recordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count());
    if (PrimaryFailed)
      noteReplicaDown(Primary, "hedge_primary_failed");
    // Record under the owner: once it answers (or rejoins), these are the
    // keys its cache partition should hold.
    recordHotLine(Primary, Req, Line);
    return Response;
  }

  // Both legs failed.
  Lock.unlock();
  noteReplicaDown(Primary, "hedge_both_failed");
  noteReplicaDown(Secondary, "hedge_both_failed");
  ReplicaDownErrors.fetch_add(1, std::memory_order_relaxed);
  return service::errorResponse(Req.Id, "replica_down",
                                "replica " + Config.Replicas[Primary] +
                                    " unreachable (hedge to " +
                                    Config.Replicas[Secondary] +
                                    " failed too); both marked down",
                                Req.TraceId);
}

std::string Router::forward(const service::Request &Req,
                            const std::string &Line) {
  size_t R = liveOwnerOf(Req.Program);
  if (R >= numReplicas()) {
    ReplicaDownErrors.fetch_add(1, std::memory_order_relaxed);
    return service::errorResponse(
        Req.Id, "replica_down",
        "all " + std::to_string(numReplicas()) + " replicas down",
        Req.TraceId);
  }

  unsigned DelayMs = hedgeDelayMs();
  if (DelayMs != 0 && !Req.Program.empty()) {
    size_t Secondary = nextLiveOwnerAfter(Req.Program, R);
    if (Secondary < numReplicas())
      return forwardHedged(Req, Line, R, Secondary, DelayMs);
  }

  TraceSpan Span("router.forward");
  if (Span.active()) {
    Span.arg("replica", std::to_string(R));
    if (!Req.TraceId.empty())
      Span.arg("trace_id", Req.TraceId);
  }
  auto Start = std::chrono::steady_clock::now();
  std::string Response, Err;
  if (clientRoundTrip(Config.Replicas[R], Line, Response, &Err)) {
    Forwarded.fetch_add(1, std::memory_order_relaxed);
    ForwardLatency.recordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count());
    if (!Req.Program.empty())
      recordHotLine(R, Req, Line);
    return Response;
  }
  // Mark down *before* answering: the client's retry walks the ring past
  // this replica, which is the deterministic failover the tests pin.
  noteReplicaDown(R, "forward_failed");
  ReplicaDownErrors.fetch_add(1, std::memory_order_relaxed);
  return service::errorResponse(Req.Id, "replica_down",
                                "replica " + Config.Replicas[R] +
                                    " unreachable; marked down, retry routes "
                                    "to the next live owner",
                                Req.TraceId);
}

std::string Router::handleLine(const std::string &Line) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  service::Request Req;
  std::string Err;
  if (!service::parseRequest(Line, Req, &Err)) {
    BadRequests.fetch_add(1, std::memory_order_relaxed);
    return service::errorResponse(Req.Id, "bad_request", Err, Req.TraceId);
  }
  TraceSpan Span("router.request");
  if (Span.active()) {
    if (!Req.Id.empty())
      Span.arg("id", Req.Id);
    if (!Req.TraceId.empty())
      Span.arg("trace_id", Req.TraceId);
  }

  switch (Req.TheVerb) {
  case service::Verb::Stats:
    return fanOut(Req.Id, Req.TraceId, /*Metrics=*/false);
  case service::Verb::Metrics:
    return fanOut(Req.Id, Req.TraceId, /*Metrics=*/true);
  case service::Verb::Reload:
    return broadcastReload(Line, Req.Id, Req.TraceId);
  case service::Verb::Shutdown: {
    Broadcasts.fetch_add(1, std::memory_order_relaxed);
    // Stop first: the supervisor must not respawn replicas we are about to
    // drain (superviseTick re-checks this flag before every action).
    StopRequested.store(true, std::memory_order_release);
    for (size_t I = 0; I < numReplicas(); ++I) {
      std::string Response, E2;
      clientRoundTrip(Config.Replicas[I], "{\"verb\":\"shutdown\"}", Response,
                      &E2);
    }
    return service::okResponse(Req.Id, "{\"stopping\":true}", Req.TraceId);
  }
  default:
    break;
  }

  // Program-carrying verbs (and `specs`, which routes by the empty key):
  // forward the raw line to the live ring owner, so the response — id echo,
  // trace id, result bytes — is exactly what a direct client would see.
  return forward(Req, Line);
}

//===----------------------------------------------------------------------===//
// Socket serving (modeled on service::Server's accept loop)
//===----------------------------------------------------------------------===//

namespace {

bool sendAllBytes(int Fd, const char *Data, size_t Len) {
  size_t Sent = 0;
  while (Sent < Len) {
    ssize_t N = ::send(Fd, Data + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int Router::serveUnixSocket(const std::string &Path,
                            const volatile int *StopFlag) {
  std::string Err;
  Address Addr;
  Addr.Tcp = false;
  Addr.Path = Path;
  int ListenFd = wireListen(Addr, &Err);
  if (ListenFd < 0) {
    return 1;
  }

  std::mutex ConnMu;
  std::vector<int> ConnFds;
  std::vector<std::thread> Threads;

  auto Stopped = [&] {
    return (StopFlag && *StopFlag) ||
           StopRequested.load(std::memory_order_acquire);
  };

  // The supervisor thread: one superviseTick per ProbeIntervalMs, sleeping
  // in short slices so shutdown is prompt.
  std::thread Supervisor;
  if (Config.Supervise)
    Supervisor = std::thread([this, &Stopped] {
      while (!Stopped()) {
        superviseTick();
        unsigned SleptMs = 0;
        while (!Stopped() && SleptMs < Config.ProbeIntervalMs) {
          unsigned Slice = std::min(50u, Config.ProbeIntervalMs - SleptMs);
          std::this_thread::sleep_for(std::chrono::milliseconds(Slice));
          SleptMs += Slice;
        }
      }
    });

  while (!Stopped()) {
    int Client = wireAccept(ListenFd, static_cast<int>(Config.AcceptPollMs));
    if (Client == -1)
      continue; // poll timeout: re-check the stop flags
    if (Client < 0)
      break;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      ConnFds.push_back(Client);
    }
    Threads.emplace_back([this, Client, &ConnMu, &ConnFds] {
      std::string Buffer;
      char Chunk[65536];
      for (;;) {
        ssize_t N = ::recv(Client, Chunk, sizeof(Chunk), 0);
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break;
        Buffer.append(Chunk, static_cast<size_t>(N));
        size_t Pos;
        while ((Pos = Buffer.find('\n')) != std::string::npos) {
          std::string Line = Buffer.substr(0, Pos);
          Buffer.erase(0, Pos + 1);
          if (!Line.empty() && Line.back() == '\r')
            Line.pop_back();
          if (Line.empty())
            continue;
          std::string Response = handleLine(Line);
          Response += '\n';
          if (!sendAllBytes(Client, Response.data(), Response.size()))
            break;
        }
      }
      {
        std::lock_guard<std::mutex> Lock(ConnMu);
        ConnFds.erase(std::remove(ConnFds.begin(), ConnFds.end(), Client),
                      ConnFds.end());
      }
      ::close(Client);
    });
  }

  if (Supervisor.joinable())
    Supervisor.join();

  // Wake blocked readers so their threads observe EOF and exit.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : Threads)
    T.join();
  ::close(ListenFd);
  ::unlink(Path.c_str());
  return 0;
}
