//===- Router.h - Consistent-hash serving router ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `uspec route`: a consistent-hash router in front of N `uspec serve`
/// replicas (DESIGN.md §14), self-healing per DESIGN.md §15. Program-carrying
/// verbs (analyze/alias/typestate/taint) are forwarded to the replica owning
/// the program's position on a 64-virtual-node hash ring keyed by
/// hashString(source) — the same source text always lands on the same
/// replica, so the shared-nothing per-replica LRU caches partition the
/// fingerprint keyspace instead of duplicating it. `stats`/`metrics` fan out
/// to every replica (re-probing down ones) and aggregate; `reload`
/// broadcasts for zero-downtime fleet-wide model swaps; a dead replica
/// yields a structured `replica_down` error (transient — `uspec query
/// --retries` retries it) and deterministic failover: the ring walk skips
/// down replicas, so the retry lands on the next live owner.
///
/// Self-healing layers on top of that base:
///
///  - **Supervisor** (`route --supervise` / `--respawn-cmd`): a background
///    thread probes every replica each ProbeIntervalMs; a dead one is
///    respawned via the shell command template (deterministic seeded
///    backoff between attempts, fault sites `router.probe` /
///    `router.respawn`) and re-added to the ring only after a successful
///    stats probe — so key movement on rejoin is exactly the inverse of the
///    removal, restoring the original assignment.
///  - **Request hedging** (`--hedge-ms` / `--hedge-auto`): if the owner has
///    not answered within the hedge delay (fixed, or derived from the
///    observed p95 forward latency), the request is fired at the next live
///    ring owner with `"no_cache":true` (so the non-owner never pollutes
///    its cache partition) and the first successful answer wins — both
///    answers are byte-identical by the determinism contract.
///  - **Warm-cache handoff**: per replica, a small LRU of the hottest
///    forwarded request lines (keys + request text, never response
///    payloads). On rejoin and after a confirmed broadcast reload the
///    router replays them against the replica before it takes traffic, so
///    a recovered or swapped fleet serves warm.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_DISTRIB_ROUTER_H
#define USPEC_DISTRIB_ROUTER_H

#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace service {
struct Request;
} // namespace service
namespace distrib {

struct RouterConfig {
  /// Unix socket paths of the serve replicas, in ring order (the ring is a
  /// pure function of these strings, so a restart reproduces it).
  std::vector<std::string> Replicas;
  /// Ring points per replica. More points smooth the keyspace split;
  /// ownership stays deterministic at any value.
  unsigned VirtualNodes = 64;
  /// Accept-loop poll interval (bounds stop-flag latency), milliseconds.
  unsigned AcceptPollMs = 200;

  /// Starts the supervisor thread in serveUnixSocket: probe every replica
  /// each ProbeIntervalMs, respawn dead ones (when RespawnCmd is set) and
  /// rejoin recovered ones warm.
  bool Supervise = false;
  /// Shell command template used to respawn a dead replica; every
  /// occurrence of `{socket}` is replaced by the replica's socket path.
  /// Empty = probe/rejoin only (externally managed processes).
  std::string RespawnCmd;
  /// Supervisor probe interval, milliseconds.
  unsigned ProbeIntervalMs = 500;
  /// Seed of the deterministic respawn backoff (service::retryDelayMs over
  /// hash(seed, replica index)): the same seed reproduces the same backoff
  /// schedule.
  uint64_t RespawnSeed = 0;

  /// Hedge delay in milliseconds; 0 disables hedging.
  unsigned HedgeMs = 0;
  /// Derive the hedge delay from the observed p95 forward latency once
  /// enough samples accumulated; HedgeMs (or 50 ms when 0) is the fallback
  /// until then.
  bool HedgeAuto = false;

  /// Per-replica hot-key LRU capacity for the warm-cache handoff;
  /// 0 disables the handoff.
  unsigned WarmKeys = 32;
};

/// The router. Health state (down flags) is test-visible: consistent-hash
/// stability under replica removal is a pinned property, not an emergent
/// one.
class Router {
public:
  explicit Router(RouterConfig Config);

  size_t numReplicas() const { return Config.Replicas.size(); }

  /// Ring owner of \p Program ignoring health — the stable assignment.
  size_t ownerOf(std::string_view Program) const;

  /// Ring owner skipping down replicas (deterministic failover order).
  /// Returns numReplicas() when every replica is down.
  size_t liveOwnerOf(std::string_view Program) const;

  /// First live ring owner of \p Program that is not \p Exclude — where a
  /// hedged request goes. Returns numReplicas() when there is none.
  size_t nextLiveOwnerAfter(std::string_view Program, size_t Exclude) const;

  void markDown(size_t Replica);
  void markUp(size_t Replica);
  bool isDown(size_t Replica) const;

  /// One supervisor pass: probe every replica (fault site `router.probe`),
  /// rejoin recovered ones (warm replay, then markUp), and respawn dead
  /// ones past their backoff deadline (fault site `router.respawn`).
  /// Called periodically by the supervisor thread; public so tests drive
  /// single deterministic passes.
  void superviseTick();

  /// Probe \p Replica once; on success replay its warm set and mark it up
  /// (the ring re-add discipline: never take traffic cold). Returns true
  /// if the replica is up afterwards.
  bool recoverReplica(size_t Replica);

  /// Current hedge delay in milliseconds (0 = hedging off). Fixed
  /// (HedgeMs) or p95-derived (HedgeAuto).
  unsigned hedgeDelayMs() const;

  /// Handles one request line, returning one response line (no trailing
  /// newline). Forwarding, fan-out and broadcast happen synchronously.
  std::string handleLine(const std::string &Line);

  /// The router's own counters as a JSON object.
  std::string statsJson() const;

  /// Serves newline-delimited JSON on a Unix socket until \p StopFlag is
  /// set (or a `shutdown` request arrives, which also broadcasts to the
  /// replicas). Starts the supervisor thread when Config.Supervise.
  /// Returns a process exit code.
  int serveUnixSocket(const std::string &Path, const volatile int *StopFlag);

  uint64_t hedgedCount() const { return Hedged.load(); }
  uint64_t hedgedWinsCount() const { return HedgedWins.load(); }
  uint64_t respawnsCount() const { return Respawns.load(); }
  uint64_t rejoinsCount() const { return Rejoins.load(); }
  uint64_t warmReplaysCount() const { return WarmReplays.load(); }

private:
  struct RingPoint {
    uint64_t Point;
    uint32_t Replica;
  };

  /// One remembered hot request: the dedup key (hash of program + options)
  /// and the raw request line to replay. Lines, not payloads: the replica
  /// recomputes the answer, the router never stores responses.
  struct HotEntry {
    uint64_t Key;
    std::string Line;
  };
  /// Per-replica warm set; mutex-guarded, tiny (Config.WarmKeys entries).
  struct WarmSet {
    std::mutex Mu;
    std::list<HotEntry> Lru; ///< Front = hottest.
  };

  /// Per-replica supervisor state; guarded by SupMu.
  struct SupState {
    unsigned Attempts = 0; ///< Respawn attempts since the last rejoin.
    std::chrono::steady_clock::time_point NextRespawn{};
  };

  size_t ringBegin(std::string_view Program) const;
  std::string fanOut(const std::string &Id, std::string_view TraceId,
                     bool Metrics);
  std::string broadcastReload(const std::string &Line, const std::string &Id,
                              std::string_view TraceId);
  std::string forward(const service::Request &Req, const std::string &Line);
  std::string forwardHedged(const service::Request &Req,
                            const std::string &Line, size_t Primary,
                            size_t Secondary, unsigned DelayMs);
  /// Remembers \p Line in \p Replica's warm set (LRU, deduped by key).
  void recordHotLine(size_t Replica, const service::Request &Req,
                     const std::string &Line);
  /// Replays \p Replica's warm set against it; returns replayed count.
  size_t replayWarmKeys(size_t Replica);
  /// markDown plus a `replica_down` event on the up→down transition only
  /// (\p Cause says which path noticed: probe, forward, hedge...).
  void noteReplicaDown(size_t Replica, const char *Cause);
  /// The ring re-add discipline in one place: warm replay, markUp, rejoin
  /// counter — each step mirrored into the event log (\p Via = which path
  /// recovered it: supervisor probe, fan-out probe, recoverReplica).
  void rejoinReplica(size_t Replica, const char *Via);
  /// Double-forks `/bin/sh -c <RespawnCmd with {socket} substituted>` so
  /// the replica is orphaned to init (no zombies, no SIGCHLD handler).
  void spawnReplica(size_t Replica);

  RouterConfig Config;
  std::vector<RingPoint> Ring;
  std::unique_ptr<std::atomic<bool>[]> Down;
  std::atomic<bool> StopRequested{false};

  /// Process start, wall clock (Unix seconds) for the
  /// uspec_process_start_time_seconds aggregation and steady clock for
  /// uptime_s in statsJson().
  double StartTimeUnix = 0;
  std::chrono::steady_clock::time_point StartSteady;

  std::vector<std::unique_ptr<WarmSet>> Warm; ///< One per replica.
  std::mutex SupMu;
  std::vector<SupState> Sup; ///< One per replica; guarded by SupMu.

  /// Forward latency of answered program-carrying requests (the hedging
  /// p95 source).
  telemetry::ShardedHistogram ForwardLatency;

  // Counters (rendered by statsJson and the metrics aggregation).
  mutable std::atomic<uint64_t> Requests{0};
  mutable std::atomic<uint64_t> Forwarded{0};
  mutable std::atomic<uint64_t> FanOuts{0};
  mutable std::atomic<uint64_t> Broadcasts{0};
  mutable std::atomic<uint64_t> ReplicaDownErrors{0};
  mutable std::atomic<uint64_t> BadRequests{0};
  mutable std::atomic<uint64_t> Hedged{0};      ///< Hedge requests fired.
  mutable std::atomic<uint64_t> HedgedWins{0};  ///< Hedge answered first.
  mutable std::atomic<uint64_t> Respawns{0};    ///< Respawn attempts.
  mutable std::atomic<uint64_t> Rejoins{0};     ///< Down→up transitions.
  mutable std::atomic<uint64_t> WarmReplays{0}; ///< Hot lines replayed.
  mutable std::atomic<uint64_t> ProbeFailures{0};
};

} // namespace distrib
} // namespace uspec

#endif // USPEC_DISTRIB_ROUTER_H
