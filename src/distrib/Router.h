//===- Router.h - Consistent-hash serving router ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `uspec route`: a consistent-hash router in front of N `uspec serve`
/// replicas (DESIGN.md §14). Program-carrying verbs (analyze/alias/
/// typestate/taint) are forwarded to the replica owning the program's
/// position on a 64-virtual-node hash ring keyed by hashString(source) —
/// the same source text always lands on the same replica, so the
/// shared-nothing per-replica LRU caches partition the fingerprint keyspace
/// instead of duplicating it. `stats`/`metrics` fan out to every replica
/// (re-probing down ones) and aggregate; `reload` broadcasts for
/// zero-downtime fleet-wide model swaps; a dead replica yields a structured
/// `replica_down` error (transient — `uspec query --retries` retries it)
/// and deterministic failover: the ring walk skips down replicas, so the
/// retry lands on the next live owner.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_DISTRIB_ROUTER_H
#define USPEC_DISTRIB_ROUTER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace distrib {

struct RouterConfig {
  /// Unix socket paths of the serve replicas, in ring order (the ring is a
  /// pure function of these strings, so a restart reproduces it).
  std::vector<std::string> Replicas;
  /// Ring points per replica. More points smooth the keyspace split;
  /// ownership stays deterministic at any value.
  unsigned VirtualNodes = 64;
  /// Accept-loop poll interval (bounds stop-flag latency), milliseconds.
  unsigned AcceptPollMs = 200;
};

/// The router. Health state (down flags) is test-visible: consistent-hash
/// stability under replica removal is a pinned property, not an emergent
/// one.
class Router {
public:
  explicit Router(RouterConfig Config);

  size_t numReplicas() const { return Config.Replicas.size(); }

  /// Ring owner of \p Program ignoring health — the stable assignment.
  size_t ownerOf(std::string_view Program) const;

  /// Ring owner skipping down replicas (deterministic failover order).
  /// Returns numReplicas() when every replica is down.
  size_t liveOwnerOf(std::string_view Program) const;

  void markDown(size_t Replica);
  void markUp(size_t Replica);
  bool isDown(size_t Replica) const;

  /// Handles one request line, returning one response line (no trailing
  /// newline). Forwarding, fan-out and broadcast happen synchronously.
  std::string handleLine(const std::string &Line);

  /// The router's own counters as a JSON object.
  std::string statsJson() const;

  /// Serves newline-delimited JSON on a Unix socket until \p StopFlag is
  /// set (or a `shutdown` request arrives, which also broadcasts to the
  /// replicas). Returns a process exit code.
  int serveUnixSocket(const std::string &Path, const volatile int *StopFlag);

private:
  struct RingPoint {
    uint64_t Point;
    uint32_t Replica;
  };

  size_t ringBegin(std::string_view Program) const;
  std::string fanOut(const std::string &Id, std::string_view TraceId,
                     bool Metrics);
  std::string broadcastReload(const std::string &Line, const std::string &Id,
                              std::string_view TraceId);

  RouterConfig Config;
  std::vector<RingPoint> Ring;
  std::unique_ptr<std::atomic<bool>[]> Down;
  std::atomic<bool> StopRequested{false};

  // Counters (rendered by statsJson and the metrics aggregation).
  mutable std::atomic<uint64_t> Requests{0};
  mutable std::atomic<uint64_t> Forwarded{0};
  mutable std::atomic<uint64_t> FanOuts{0};
  mutable std::atomic<uint64_t> Broadcasts{0};
  mutable std::atomic<uint64_t> ReplicaDownErrors{0};
  mutable std::atomic<uint64_t> BadRequests{0};
};

} // namespace distrib
} // namespace uspec

#endif // USPEC_DISTRIB_ROUTER_H
