//===- Journal.h - Append-only corpus journal (.uspj) ----------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The append-only corpus journal behind `uspec ingest` and `uspec train
/// --journal` (DESIGN.md §12): every training program ever ingested, in
/// ingestion order, each entry stamped with a generation number and a
/// checksum. Training records how far it read (artifact "jrnl" section);
/// the next run trains only the suffix.
///
/// Integrity is two-layered: a per-entry checksum over (generation, name,
/// source) catches bit rot in any one entry, and the running chain checksum
/// C_i = combine(C_{i-1}, checksum_i) — persisted in trained artifacts —
/// proves the journal a previous artifact saw is a strict prefix of the
/// current one (append-only discipline; rewriting history forces a full
/// retrain, never a silently wrong warm-start).
///
/// The on-disk format is a whole-file encoding ("USPJ" magic, format
/// version, entry count, entries); appends rewrite the file through the
/// same temp→fsync→rename path artifacts use, so a crash mid-append leaves
/// the previous journal intact.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_INCREMENTAL_JOURNAL_H
#define USPEC_INCREMENTAL_JOURNAL_H

#include "artifact/Binary.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace incremental {

/// One ingested program.
struct JournalEntry {
  /// Ingestion batch this entry belongs to. One `uspec ingest` invocation
  /// appends one generation; generations are strictly positive and
  /// non-decreasing along the journal.
  uint64_t Generation = 0;
  /// Display name (the path given to ingest).
  std::string Name;
  /// Full MiniLang source text.
  std::string Source;
  /// computeChecksum(Generation, Name, Source); validated on load.
  uint64_t Checksum = 0;

  static uint64_t computeChecksum(uint64_t Generation, std::string_view Name,
                                  std::string_view Source);
};

/// The in-memory journal: entries in ingestion order.
struct CorpusJournal {
  std::vector<JournalEntry> Entries;

  /// Generation of the last entry (0 for an empty journal).
  uint64_t lastGeneration() const {
    return Entries.empty() ? 0 : Entries.back().Generation;
  }

  /// Running chain checksum over the first \p N entries. chainChecksum(0)
  /// is a fixed seed, so an empty prefix compares equal across journals.
  uint64_t chainChecksum(size_t N) const;
  uint64_t chainChecksum() const { return chainChecksum(Entries.size()); }

  /// Appends an entry (checksum computed here). \p Generation must be
  /// >= lastGeneration() and >= 1; asserts in debug builds.
  JournalEntry &append(uint64_t Generation, std::string Name,
                       std::string Source);
};

/// Whole-file encoding: magic "USPJ", u16 format version, varint entry
/// count, then per entry (varint generation, string name, string source,
/// u64 checksum).
std::string encodeJournal(const CorpusJournal &J);

/// Decodes and validates \p Bytes: magic/version, per-entry checksums,
/// non-decreasing positive generations. On failure returns false and fills
/// \p Err with the byte offset and cause.
bool decodeJournal(std::string_view Bytes, CorpusJournal &Out,
                   ArtifactError *Err = nullptr);

/// Reads and decodes the journal at \p Path. A missing file is an error
/// unless \p MissingOk, in which case \p Out is left empty and the call
/// succeeds (the ingest path: first append creates the journal).
bool loadJournal(const std::string &Path, CorpusJournal &Out, bool MissingOk,
                 std::string *Err = nullptr);

/// Encodes \p J and writes it crash-safely (artifact/ArtifactIO.h
/// writeFileAtomic: temp→fsync→rename). Fault site `journal.append` fires
/// before any byte is staged; an injected FaultInjected is caught and
/// reported through \p Err like any other I/O failure.
bool saveJournal(const std::string &Path, const CorpusJournal &J,
                 std::string *Err = nullptr);

} // namespace incremental
} // namespace uspec

#endif // USPEC_INCREMENTAL_JOURNAL_H
