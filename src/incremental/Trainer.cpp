//===- Trainer.cpp - Journal-driven incremental training ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/Trainer.h"

#include "corpus/Dedup.h"
#include "ir/Lowering.h"
#include "support/JsonEscape.h"
#include "support/Trace.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

using namespace uspec;
using namespace uspec::incremental;

namespace {

/// Parses journal entries [Begin, End), keeping one corpus slot per entry:
/// a parse failure leaves a default (empty) IRProgram in place so entry
/// index == program index == program id stays true — exactly the in-place
/// quarantine discipline of the pipeline itself.
std::vector<IRProgram> parsePrograms(const CorpusJournal &J, size_t Begin,
                                     size_t End, StringInterner &Strings,
                                     std::vector<std::string> &Notes) {
  std::vector<IRProgram> Programs;
  Programs.reserve(End - Begin);
  for (size_t I = Begin; I < End; ++I) {
    const JournalEntry &E = J.Entries[I];
    DiagnosticSink Diags;
    std::optional<IRProgram> P = parseAndLower(E.Source, E.Name, Strings,
                                               Diags);
    if (P) {
      Programs.push_back(std::move(*P));
      continue;
    }
    IRProgram Empty;
    Empty.Name = E.Name;
    Programs.push_back(std::move(Empty));
    Notes.push_back("journal entry " + std::to_string(I) + " ('" + E.Name +
                    "') no longer parses; kept as an empty corpus slot");
  }
  return Programs;
}

void appendManifestEntries(CorpusManifest &Manifest,
                           const CorpusJournal &J, size_t Begin,
                           const std::vector<IRProgram> &Programs) {
  for (size_t I = 0; I < Programs.size(); ++I)
    Manifest.Entries.push_back(
        {J.Entries[Begin + I].Name, programFingerprint(Programs[I])});
}

void appendF64(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  Out += Buf;
}

/// Quantifies how the selected set and candidate scores moved between the
/// prior artifact and the warm result. Both live in the same interner.
std::string specLevelDiff(const LearnArtifacts &Prev, const LearnResult &Now,
                          const StringInterner &Strings) {
  std::vector<std::string> Added, Removed;
  size_t Kept = 0;
  for (const Spec &S : Now.Selected.all()) {
    if (Prev.Result.Selected.contains(S))
      ++Kept;
    else
      Added.push_back(S.str(Strings));
  }
  for (const Spec &S : Prev.Result.Selected.all())
    if (!Now.Selected.contains(S))
      Removed.push_back(S.str(Strings));

  std::unordered_map<Spec, double, SpecHash> PrevScore;
  PrevScore.reserve(Prev.Result.Candidates.size());
  for (const ScoredCandidate &C : Prev.Result.Candidates)
    PrevScore.emplace(C.S, C.Score);
  double MaxDrift = 0, SumDrift = 0;
  size_t Scored = 0;
  for (const ScoredCandidate &C : Now.Candidates) {
    auto It = PrevScore.find(C.S);
    if (It == PrevScore.end())
      continue;
    double D = std::fabs(C.Score - It->second);
    MaxDrift = std::max(MaxDrift, D);
    SumDrift += D;
    ++Scored;
  }

  std::string Json = "{\"added\":" + std::to_string(Added.size()) +
                     ",\"removed\":" + std::to_string(Removed.size()) +
                     ",\"kept\":" + std::to_string(Kept) + ",\"added_specs\":[";
  for (size_t I = 0; I < Added.size(); ++I) {
    if (I)
      Json += ',';
    appendJsonQuoted(Json, Added[I]);
  }
  Json += "],\"removed_specs\":[";
  for (size_t I = 0; I < Removed.size(); ++I) {
    if (I)
      Json += ',';
    appendJsonQuoted(Json, Removed[I]);
  }
  Json += "],\"score_drift\":{\"compared\":" + std::to_string(Scored) +
          ",\"max\":";
  appendF64(Json, MaxDrift);
  Json += ",\"mean\":";
  appendF64(Json, Scored ? SumDrift / static_cast<double>(Scored) : 0.0);
  Json += "}}";
  return Json;
}

/// Why the prior artifact cannot seed a warm start ("" when it can).
std::string warmIneligibility(const LearnArtifacts &Prev,
                              const CorpusJournal &J,
                              const LearnerConfig &Config) {
  if (!Prev.Lineage || !Prev.Ledger)
    return "prior artifact was not journal-trained (no lineage/ledger)";
  const JournalLineage &L = *Prev.Lineage;
  if (L.TrainedEntries > J.Entries.size())
    return "prior artifact covers " + std::to_string(L.TrainedEntries) +
           " entries but the journal has only " +
           std::to_string(J.Entries.size()) + " (journal truncated?)";
  if (J.chainChecksum(static_cast<size_t>(L.TrainedEntries)) !=
      L.ChainChecksum)
    return "journal history was rewritten under the prior artifact "
           "(chain checksum mismatch)";
  if (Prev.Config.Seed != Config.Seed)
    return "seed changed";
  if (Prev.Config.DistanceBound != Config.DistanceBound)
    return "distance bound changed";
  if (Prev.Config.TopK != Config.TopK)
    return "top-k changed";
  if (Prev.Config.Scoring != Config.Scoring)
    return "score kind changed";
  if (Prev.Config.ExperimentalPatterns != Config.ExperimentalPatterns)
    return "experimental-pattern setting changed";
  return "";
}

} // namespace

std::string_view incremental::trainModeName(TrainMode Mode) {
  switch (Mode) {
  case TrainMode::Full:
    return "full";
  case TrainMode::Replay:
    return "replay";
  case TrainMode::Warm:
    return "warm";
  case TrainMode::UpToDate:
    return "up-to-date";
  }
  return "?";
}

std::optional<IncrementalOutcome>
incremental::trainFromJournal(const CorpusJournal &J,
                              const LearnerConfig &Config,
                              StringInterner &Strings,
                              std::string_view PrevArtifactBytes,
                              bool ForceReplay, std::string *Err,
                              const PipelineEngine *Engine) {
  if (J.Entries.empty()) {
    if (Err)
      *Err = "journal is empty; ingest programs first";
    return std::nullopt;
  }

  IncrementalOutcome Out;
  Out.Lineage.Generation = J.lastGeneration();
  Out.Lineage.ChainChecksum = J.chainChecksum();
  Out.Lineage.TrainedEntries = J.Entries.size();
  Out.Manifest.Generation = J.lastGeneration();

  // Inspect the prior artifact with a throwaway interner: only plain-value
  // fields (lineage, config scalars) are read from this decode, so the
  // training interner is never polluted on the Full/Replay paths.
  bool WarmEligible = false;
  std::string Demotion;
  if (!PrevArtifactBytes.empty()) {
    StringInterner Scratch;
    ArtifactError DecodeErr;
    std::optional<LearnArtifacts> Prev =
        USpecLearner::loadArtifacts(PrevArtifactBytes, Scratch, &DecodeErr);
    if (!Prev)
      Demotion = "prior artifact unreadable (" + DecodeErr.str() + ")";
    else if ((Demotion = warmIneligibility(*Prev, J, Config)).empty())
      WarmEligible = true;
    if (WarmEligible && Prev->Lineage->TrainedEntries == J.Entries.size() &&
        !ForceReplay) {
      Out.Mode = TrainMode::UpToDate;
      Out.Notes.push_back("journal generation " +
                          std::to_string(J.lastGeneration()) +
                          " already trained; nothing to do");
      return Out;
    }
  }

  TraceSpan Span("incremental.train");

  if (ForceReplay || !WarmEligible) {
    Out.Mode = ForceReplay ? TrainMode::Replay : TrainMode::Full;
    if (!Demotion.empty() && !ForceReplay)
      Out.Notes.push_back("full retrain: " + Demotion);
    std::vector<IRProgram> Corpus =
        parsePrograms(J, 0, J.Entries.size(), Strings, Out.Notes);
    if (Span.active()) {
      Span.arg("mode", std::string(trainModeName(Out.Mode)));
      Span.arg("programs", std::to_string(Corpus.size()));
    }
    if (Engine && Engine->Full) {
      Out.Result = Engine->Full(Corpus);
    } else {
      USpecLearner Learner(Strings, Config);
      Out.Result = Learner.learn(Corpus);
    }
    appendManifestEntries(Out.Manifest, J, 0, Corpus);
    Out.ProgramsTrained = Corpus.size();
    return Out;
  }

  // Warm start: this decode targets the real interner — the returned model
  // and ledger must speak the training run's symbols.
  ArtifactError DecodeErr;
  std::optional<LearnArtifacts> Prev =
      USpecLearner::loadArtifacts(PrevArtifactBytes, Strings, &DecodeErr);
  if (!Prev) {
    // Unreachable in practice (the scratch decode above succeeded), but a
    // torn read between the two decodes must not crash the trainer.
    if (Err)
      *Err = "prior artifact unreadable: " + DecodeErr.str();
    return std::nullopt;
  }

  size_t Base = static_cast<size_t>(Prev->Lineage->TrainedEntries);
  std::vector<IRProgram> Delta =
      parsePrograms(J, Base, J.Entries.size(), Strings, Out.Notes);
  if (Span.active()) {
    Span.arg("mode", "warm");
    Span.arg("base", std::to_string(Base));
    Span.arg("delta", std::to_string(Delta.size()));
  }

  WarmStart Seed;
  Seed.Model = std::move(Prev->Result.Model);
  Seed.Ledger = std::move(*Prev->Ledger);
  Seed.BasePrograms = Base;
  Seed.BaseTrainingSamples = Prev->Result.NumTrainingSamples;

  Out.Mode = TrainMode::Warm;
  if (Engine && Engine->Increment) {
    Out.Result = Engine->Increment(Delta, std::move(Seed));
  } else {
    USpecLearner Learner(Strings, Config);
    Out.Result = Learner.learnIncrement(Delta, std::move(Seed));
  }
  Out.Manifest.Entries = Prev->Manifest.Entries;
  appendManifestEntries(Out.Manifest, J, Base, Delta);
  Out.ProgramsTrained = Delta.size();
  Out.DiffJson = specLevelDiff(*Prev, Out.Result, Strings);
  return Out;
}
