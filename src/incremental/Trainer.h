//===- Trainer.h - Journal-driven incremental training ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer of `uspec train --journal` (DESIGN.md §12): given a
/// corpus journal and (optionally) the bytes of the previously trained
/// artifact, decide between four modes and run the pipeline accordingly:
///
///   Full     — no usable prior: train every journal entry from scratch.
///   Replay   — `--replay`: full retrain over the journal regardless of the
///              prior. Byte-identical to Full from the same seed; the smoke
///              script and tests pin this as the incremental ground truth.
///   Warm     — the prior is a journal-trained artifact whose lineage is a
///              verified prefix of this journal with a compatible config:
///              parse only the new entries, warm-start ϕ from the prior
///              model (USpecLearner::learnIncrement) and emit a quantified
///              spec-level diff against the prior's selected set.
///   UpToDate — the journal has nothing newer than the prior; nothing runs.
///
/// Any eligibility failure (corrupt prior, rewritten journal history,
/// config mismatch) demotes to Full with a human-readable note — a warm
/// start is never silently wrong, only skipped.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_INCREMENTAL_TRAINER_H
#define USPEC_INCREMENTAL_TRAINER_H

#include "artifact/Checkpoint.h"
#include "core/Learner.h"
#include "incremental/Journal.h"

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace incremental {

enum class TrainMode { Full, Replay, Warm, UpToDate };

/// Display name of a mode ("full", "replay", "warm", "up-to-date").
std::string_view trainModeName(TrainMode Mode);

/// Everything a journal-driven run produces. The caller saves
/// Result+Manifest+Lineage+Ledger via saveLearnArtifacts (the ledger is
/// Result.Ledger).
struct IncrementalOutcome {
  TrainMode Mode = TrainMode::Full;
  LearnResult Result;
  /// Per-entry fingerprints; Generation = journal lastGeneration(). For a
  /// warm run the prefix is carried over from the prior artifact unchanged.
  CorpusManifest Manifest;
  /// Lineage to persist: trained through the whole journal.
  JournalLineage Lineage;
  /// Warm runs only: JSON object quantifying the spec-level change against
  /// the prior artifact ({"added":…,"removed":…,"kept":…,
  /// "added_specs":[…],"removed_specs":[…],"score_drift":{…}}). Empty
  /// otherwise.
  std::string DiffJson;
  /// Number of programs actually parsed+analyzed this run (delta size for
  /// Warm, journal size for Full/Replay, 0 for UpToDate).
  size_t ProgramsTrained = 0;
  /// Human-readable decisions worth surfacing (why a warm start was
  /// demoted, parse failures kept as empty corpus slots, …).
  std::vector<std::string> Notes;
};

/// Replaces how the pipeline is *executed* without touching how the journal
/// is *interpreted* (mode decision, lineage, manifests, diffs stay here).
/// `train --distributed` supplies closures that fan the run out to worker
/// processes; both must return exactly what USpecLearner::learn /
/// learnIncrement would for the same corpus slice — the journal layer
/// treats them as drop-in engines. The parsed programs are handed over
/// already lowered into the run's interner (a distributed engine re-derives
/// its shard payloads from the journal and uses the parse only for its
/// side effect on the interner).
struct PipelineEngine {
  std::function<LearnResult(const std::vector<IRProgram> &)> Full;
  std::function<LearnResult(const std::vector<IRProgram> &, WarmStart)>
      Increment;
};

/// Runs journal-driven training. \p PrevArtifactBytes is the raw USPB
/// artifact previously written to the output path ("" when none exists);
/// it is inspected with a throwaway interner, and only a warm run decodes
/// it into \p Strings. \p ForceReplay pins Replay mode. A non-null
/// \p Engine with the relevant closure set runs that closure instead of the
/// in-process learner. Fails (nullopt + \p Err) only on an empty journal;
/// every prior-artifact problem demotes to Full instead.
std::optional<IncrementalOutcome>
trainFromJournal(const CorpusJournal &J, const LearnerConfig &Config,
                 StringInterner &Strings, std::string_view PrevArtifactBytes,
                 bool ForceReplay, std::string *Err = nullptr,
                 const PipelineEngine *Engine = nullptr);

} // namespace incremental
} // namespace uspec

#endif // USPEC_INCREMENTAL_TRAINER_H
