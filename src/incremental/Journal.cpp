//===- Journal.cpp - Append-only corpus journal (.uspj) -----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "incremental/Journal.h"

#include "artifact/ArtifactIO.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"

#include <cassert>
#include <fstream>
#include <sstream>

using namespace uspec;
using namespace uspec::incremental;

namespace {

constexpr std::string_view JournalMagic = "USPJ";
constexpr uint16_t JournalVersion = 1;
constexpr uint64_t MaxJournalEntries = 1u << 24;

/// Seed of the chain checksum; any fixed constant works, this one spells
/// the magic so hexdumps of artifacts are self-describing-ish.
constexpr uint64_t ChainSeed = 0x5553504a31ULL; // "USPJ1"

} // namespace

uint64_t JournalEntry::computeChecksum(uint64_t Generation,
                                       std::string_view Name,
                                       std::string_view Source) {
  return hashValues(Generation, hashString(Name), hashString(Source));
}

uint64_t CorpusJournal::chainChecksum(size_t N) const {
  assert(N <= Entries.size() && "prefix longer than journal");
  uint64_t Chain = ChainSeed;
  for (size_t I = 0; I < N; ++I)
    Chain = hashCombine(Chain, Entries[I].Checksum);
  return Chain;
}

JournalEntry &CorpusJournal::append(uint64_t Generation, std::string Name,
                                    std::string Source) {
  assert(Generation >= 1 && Generation >= lastGeneration() &&
         "journal generations must be positive and non-decreasing");
  JournalEntry E;
  E.Generation = Generation;
  E.Checksum = JournalEntry::computeChecksum(Generation, Name, Source);
  E.Name = std::move(Name);
  E.Source = std::move(Source);
  Entries.push_back(std::move(E));
  return Entries.back();
}

std::string incremental::encodeJournal(const CorpusJournal &J) {
  BinaryWriter W;
  W.writeBytes(JournalMagic);
  W.writeU16(JournalVersion);
  W.writeVarint(J.Entries.size());
  for (const JournalEntry &E : J.Entries) {
    W.writeVarint(E.Generation);
    W.writeString(E.Name);
    W.writeString(E.Source);
    W.writeU64(E.Checksum);
  }
  return W.take();
}

bool incremental::decodeJournal(std::string_view Bytes, CorpusJournal &Out,
                                ArtifactError *Err) {
  BinaryReader R(Bytes, "journal");
  if (R.readBytes(JournalMagic.size()) != JournalMagic && R.ok())
    R.fail("bad magic (not a USPJ journal)");
  uint16_t Version = R.readU16();
  if (R.ok() && Version != JournalVersion)
    R.fail("unsupported journal version " + std::to_string(Version));

  CorpusJournal J;
  uint64_t Count = R.readCount(MaxJournalEntries, "journal entry");
  J.Entries.reserve(static_cast<size_t>(Count));
  uint64_t PrevGen = 0;
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    JournalEntry E;
    E.Generation = R.readVarint();
    E.Name = std::string(R.readString());
    E.Source = std::string(R.readString());
    E.Checksum = R.readU64();
    if (!R.ok())
      break;
    if (E.Generation < 1 || E.Generation < PrevGen) {
      R.fail("entry " + std::to_string(I) + ": generation " +
             std::to_string(E.Generation) + " regresses (previous " +
             std::to_string(PrevGen) + ")");
      break;
    }
    if (E.Checksum !=
        JournalEntry::computeChecksum(E.Generation, E.Name, E.Source)) {
      R.fail("entry " + std::to_string(I) + " ('" + E.Name +
             "'): checksum mismatch");
      break;
    }
    PrevGen = E.Generation;
    J.Entries.push_back(std::move(E));
  }
  if (R.ok() && R.remaining() > 0)
    R.fail(std::to_string(R.remaining()) + " trailing bytes after entries");
  if (!R.ok()) {
    if (Err)
      *Err = R.error();
    return false;
  }
  Out = std::move(J);
  return true;
}

bool incremental::loadJournal(const std::string &Path, CorpusJournal &Out,
                              bool MissingOk, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (MissingOk) {
      Out = CorpusJournal();
      return true;
    }
    if (Err)
      *Err = "cannot open journal '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  ArtifactError DecodeErr;
  if (!decodeJournal(SS.str(), Out, &DecodeErr)) {
    if (Err)
      *Err = "journal '" + Path + "': " + DecodeErr.str();
    return false;
  }
  return true;
}

bool incremental::saveJournal(const std::string &Path, const CorpusJournal &J,
                              std::string *Err) {
  try {
    USPEC_FAULT_POINT("journal.append");
  } catch (const FaultInjected &F) {
    if (Err)
      *Err = F.what();
    return false;
  }
  return writeFileAtomic(Path, encodeJournal(J), Err);
}
