//===- Candidates.cpp - Candidate extraction & scoring (Alg. 1, §5.2) --------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Candidates.h"

#include <cassert>

using namespace uspec;

double uspec::scoreCandidate(const std::vector<double> &Confidences,
                             size_t Matches, size_t Programs, ScoreKind Kind,
                             size_t TopK) {
  switch (Kind) {
  case ScoreKind::TopKMean:
  case ScoreKind::NameAware: // the prior is blended in by the learner
    return topKMean(Confidences, TopK);
  case ScoreKind::MaxConfidence:
    return maxValue(Confidences);
  case ScoreKind::P95:
    return percentile(Confidences, 0.95);
  case ScoreKind::MatchCount:
    // Squashed into [0, 1) so that τ sweeps apply uniformly.
    return static_cast<double>(Matches) /
           (static_cast<double>(Matches) + 25.0);
  case ScoreKind::ProgramCount:
    return static_cast<double>(Programs) /
           (static_cast<double>(Programs) + 10.0);
  }
  return 0;
}

double uspec::scoreCandidate(const CandidateStats &Stats, ScoreKind Kind,
                             size_t TopK) {
  return scoreCandidate(Stats.Confidences, Stats.Matches, Stats.Programs,
                        Kind, TopK);
}

void CandidateCollector::recordMatch(const Spec &S, const EventGraph &G,
                                     const std::vector<InducedEdge> &Edges,
                                     uint32_t ProgramId) {
  CandidateStats *Stats;
  auto It = Candidates.find(S);
  if (It == Candidates.end()) {
    Stats = &Candidates[S];
    Order.push_back(S);
  } else {
    Stats = &It->second;
  }
  ++Stats->Matches;
  ++TotalMatches;
  if (Stats->ProgramIds.insert(ProgramId).second)
    Stats->Programs = Stats->ProgramIds.size();

  // Alg. 1 line 6–8: only matches inducing exactly one edge are scored.
  if (Edges.size() != 1)
    return;
  Stats->Confidences.push_back(
      Model.edgeProbability(G, Edges[0].first, Edges[0].second));
}

void CandidateCollector::merge(CandidateCollector &&Other) {
  assert(&Model == &Other.Model && DistanceBound == Other.DistanceBound &&
         Experimental == Other.Experimental &&
         "merging collectors with different extraction settings");
  for (Spec &S : Other.Order) {
    auto OtherIt = Other.Candidates.find(S);
    assert(OtherIt != Other.Candidates.end());
    CandidateStats &Incoming = OtherIt->second;
    auto It = Candidates.find(S);
    if (It == Candidates.end()) {
      // First sighting across all shards so far: the candidate keeps the
      // consuming shard's stats wholesale and appends to the global order,
      // exactly where a serial run would have first created it.
      Candidates.emplace(S, std::move(Incoming));
      Order.push_back(std::move(S));
      continue;
    }
    CandidateStats &Mine = It->second;
    // Other covers later graphs, so its confidences go after ours — the
    // concatenation reproduces the serial graph-order ΓS.
    Mine.Confidences.insert(Mine.Confidences.end(),
                            Incoming.Confidences.begin(),
                            Incoming.Confidences.end());
    Mine.Matches += Incoming.Matches;
    Mine.ProgramIds.insert(Incoming.ProgramIds.begin(),
                           Incoming.ProgramIds.end());
    Mine.Programs = Mine.ProgramIds.size();
  }
  ReceiverPairsSeen += Other.ReceiverPairsSeen;
  TotalMatches += Other.TotalMatches;
  Other.Candidates.clear();
  Other.Order.clear();
}

CandidateLedger CandidateLedger::fromCollector(const CandidateCollector &C) {
  CandidateLedger Ledger;
  Ledger.Entries.reserve(C.candidates().size());
  for (const Spec &S : C.candidates()) {
    const CandidateStats &Stats = C.stats().at(S);
    Ledger.Entries.push_back(
        Entry{S, Stats.Confidences, Stats.Matches, Stats.Programs});
  }
  return Ledger;
}

void CandidateLedger::extendWith(const CandidateCollector &Delta) {
  std::unordered_map<Spec, size_t, SpecHash> Index;
  Index.reserve(Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I)
    Index.emplace(Entries[I].S, I);
  for (const Spec &S : Delta.candidates()) {
    const CandidateStats &Stats = Delta.stats().at(S);
    auto It = Index.find(S);
    if (It == Index.end()) {
      Entries.push_back(
          Entry{S, Stats.Confidences, Stats.Matches, Stats.Programs});
      continue;
    }
    Entry &E = Entries[It->second];
    // Delta covers strictly later graphs: its ΓS goes after ours, and its
    // program-id set is disjoint from everything folded in so far.
    E.Confidences.insert(E.Confidences.end(), Stats.Confidences.begin(),
                         Stats.Confidences.end());
    E.Matches += Stats.Matches;
    E.Programs += Stats.Programs;
  }
}

void CandidateLedger::extendWith(CandidateLedger &&Other) {
  std::unordered_map<Spec, size_t, SpecHash> Index;
  Index.reserve(Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I)
    Index.emplace(Entries[I].S, I);
  for (Entry &Incoming : Other.Entries) {
    auto It = Index.find(Incoming.S);
    if (It == Index.end()) {
      Index.emplace(Incoming.S, Entries.size());
      Entries.push_back(std::move(Incoming));
      continue;
    }
    Entry &E = Entries[It->second];
    // Other covers strictly later graphs: its ΓS goes after ours, and its
    // program-id range is disjoint from everything folded in so far.
    E.Confidences.insert(E.Confidences.end(), Incoming.Confidences.begin(),
                         Incoming.Confidences.end());
    E.Matches += Incoming.Matches;
    E.Programs += Incoming.Programs;
  }
  Other.Entries.clear();
}

bool CandidateCollector::addGraph(const EventGraph &G, uint32_t ProgramId,
                                  Budget *B) {
  for (auto [LaterIdx, EarlierIdx] : G.receiverPairs(DistanceBound)) {
    if (B && !B->consume())
      return false;
    ++ReceiverPairsSeen;
    const CallSite &M1 = G.callSites()[LaterIdx];
    const CallSite &M2 = G.callSites()[EarlierIdx];

    // Skip pairs with unusable method names (should not happen in practice).
    if (M1.Method.Name.isEmpty() || M2.Method.Name.isEmpty())
      continue;

    if (matchesRetSame(G, M1, M2, B)) {
      Spec S = Spec::retSame(M1.Method);
      recordMatch(S, G, inducedRetSame(G, M1, M2), ProgramId);
    }
    for (unsigned X = 1; X <= M2.nargs(); ++X) {
      if (!matchesRetArg(G, M1, M2, X, B))
        continue;
      Spec S = Spec::retArg(M1.Method, M2.Method, static_cast<uint8_t>(X));
      recordMatch(S, G, inducedRetArg(G, M1, M2, X), ProgramId);
    }
    if (B && B->exhausted())
      return false;
  }

  // Experimental RetRecv pattern (§5.3): every call site with receiver and
  // return matches trivially; the scoring has to carry all the weight.
  if (Experimental) {
    for (const CallSite &M : G.callSites()) {
      if (B && !B->consume())
        return false;
      if (M.Recv == InvalidEvent || M.Ret == InvalidEvent ||
          M.Method.Name.isEmpty())
        continue;
      recordMatch(Spec::retRecv(M.Method), G, inducedRetRecv(G, M),
                  ProgramId);
    }
  }
  return !(B && B->exhausted());
}
