//===- PipelineStats.h - Per-phase pipeline statistics ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock and workload statistics for one learn() run, broken down by
/// pipeline phase (Fig. 1 numbering). Stats are observational only: they are
/// returned in LearnResult but deliberately NOT serialized into USPB
/// artifacts, so select(τ) byte-identity across machines and thread counts
/// is unaffected. Everything except the timings and PeakCandidates is
/// bit-identical for any thread count; PeakCandidates counts transiently
/// resident shard-local table entries and therefore grows with shards.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_PIPELINESTATS_H
#define USPEC_CORE_PIPELINESTATS_H

#include "support/JsonEscape.h"

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace uspec {

/// One program excluded from a learn() run instead of aborting it: analysis
/// threw, the per-program budget ran out, or (at the CLI layer) the source
/// failed to parse and never entered the corpus.
struct QuarantineRecord {
  /// Corpus index of the program (or input-file index for parse failures).
  size_t Program = 0;
  /// Program name (IRProgram::Name / source path) when known.
  std::string Name;
  /// Machine-readable reason, e.g. "parse", "analysis:steps",
  /// "extract:steps", "fault:learn.analyze", "error:<what>".
  std::string Reason;
};

/// Per-phase wall times and workload counters of one pipeline run.
struct PipelineStats {
  /// Worker count the run actually used (config 0 resolved to hardware
  /// concurrency).
  unsigned ThreadsUsed = 1;

  // Wall-clock seconds per phase.
  double AnalyzeSeconds = 0; ///< Phase 1–2a: analysis, graphs, sampling.
  double TrainSeconds = 0;   ///< Phase 2b: model training.
  double ExtractSeconds = 0; ///< Phase 3: candidate extraction + merge.
  double ScoreSeconds = 0;   ///< Phase 4: per-candidate scoring + sort.
  double SelectSeconds = 0;  ///< Phase 5: τ-selection + extension.
  double TotalSeconds = 0;   ///< End-to-end learn() wall time.

  // Workload counters.
  size_t Programs = 0;        ///< Corpus programs analyzed.
  size_t Graphs = 0;          ///< Event graphs with at least one call site.
  size_t ReceiverPairs = 0;   ///< Call-site pairs enumerated by Alg. 1.
  size_t Matches = 0;         ///< Total pattern matches recorded.
  size_t TrainingSamples = 0; ///< Samples the model ϕ was trained on.
  size_t Candidates = 0;      ///< Distinct candidate specifications.
  /// Peak number of candidate-table entries resident at once (sum of
  /// shard-local tables before the merge; equals Candidates when serial).
  size_t PeakCandidates = 0;

  /// Programs excluded from this run (per-program isolation, DESIGN.md §10),
  /// in ascending Program order — deterministic at any thread count.
  std::vector<QuarantineRecord> Quarantined;

  /// Renders the stats as a single JSON object (no trailing newline).
  std::string json() const {
    char Buf[704];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"threads\": %u, "
        "\"phase_seconds\": {\"analyze\": %.6f, \"train\": %.6f, "
        "\"extract\": %.6f, \"score\": %.6f, \"select\": %.6f, "
        "\"total\": %.6f}, "
        "\"programs\": %zu, \"graphs\": %zu, \"receiver_pairs\": %zu, "
        "\"matches\": %zu, \"training_samples\": %zu, "
        "\"candidates\": %zu, \"peak_candidates\": %zu, "
        "\"quarantined_count\": %zu, \"quarantined\": [",
        ThreadsUsed, AnalyzeSeconds, TrainSeconds, ExtractSeconds,
        ScoreSeconds, SelectSeconds, TotalSeconds, Programs, Graphs,
        ReceiverPairs, Matches, TrainingSamples, Candidates, PeakCandidates,
        Quarantined.size());
    std::string Out = Buf;
    for (size_t I = 0; I < Quarantined.size(); ++I) {
      const QuarantineRecord &Q = Quarantined[I];
      if (I)
        Out += ", ";
      Out += "{\"program\": " + std::to_string(Q.Program) + ", \"name\": ";
      appendJsonQuoted(Out, Q.Name);
      Out += ", \"reason\": ";
      appendJsonQuoted(Out, Q.Reason);
      Out += "}";
    }
    Out += "]}";
    return Out;
  }
};

/// Steady-clock stopwatch for phase timing.
class PhaseTimer {
public:
  PhaseTimer() : Start(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last lap() call.
  double lap() {
    auto Now = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(Now - Start).count();
    Start = Now;
    return Sec;
  }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace uspec

#endif // USPEC_CORE_PIPELINESTATS_H
