//===- Learner.h - The USpec learning pipeline (Fig. 1) --------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end unsupervised pipeline of Fig. 1: analyze every corpus
/// program API-unaware (§3), train the probabilistic edge model (§4),
/// extract and score candidate specifications (§5.1–5.2), select those with
/// score ≥ τ (§5.3), and extend the set for consistency (§5.4).
///
/// This is the primary public entry point of the library:
/// \code
///   StringInterner Strings;
///   std::vector<IRProgram> Corpus = ...;      // parseAndLower(...)
///   USpecLearner Learner(Strings, LearnerConfig());
///   LearnResult Result = Learner.learn(Corpus);
///   for (const ScoredCandidate &C : Result.Candidates) ...
///   // Result.Selected drives the API-aware analysis (AnalysisOptions).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_LEARNER_H
#define USPEC_CORE_LEARNER_H

#include "core/Candidates.h"
#include "core/PipelineStats.h"
#include "ir/IR.h"
#include "model/EdgeModel.h"
#include "pointsto/Analysis.h"
#include "specs/Spec.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {

// Defined in artifact/ (ArtifactIO.h, Checkpoint.h, Binary.h).
struct ArtifactError;
struct CorpusManifest;
struct LearnArtifacts;

/// Configuration of the full learning pipeline.
struct LearnerConfig {
  /// Options for the initial, API-unaware points-to pass (§3.2). ApiAware
  /// must stay false here; the learned specs feed a separate aware pass.
  AnalysisOptions Analysis;
  /// Probabilistic model configuration (§4).
  EdgeModelConfig Model;
  /// Receiver-pair distance bound in Alg. 1 (§7.1 uses 10).
  unsigned DistanceBound = 10;
  /// k of the top-k-mean score (§5.2 uses 10).
  size_t TopK = 10;
  /// Selection threshold τ (§5.3; the evaluation uses 0.6).
  double Tau = 0.6;
  /// Score aggregation (§5.2; TopKMean is the paper's choice).
  ScoreKind Scoring = ScoreKind::TopKMean;
  /// Apply the §5.4 consistency extension to the selected set.
  bool ExtendConsistency = true;
  /// Also instantiate the experimental RetRecv pattern (§5.3 discussion).
  bool ExperimentalPatterns = false;
  /// Seed for negative subsampling and SGD shuffling.
  uint64_t Seed = 0xC0FFEE;
  /// Worker threads for the parallel pipeline phases: per-program
  /// analysis/graph/sampling (Phase 1–2a), sharded candidate extraction
  /// (Phase 3) and per-candidate scoring (Phase 4). 0 = hardware
  /// concurrency. Results are bit-identical for any thread count — sampling
  /// is seeded per program, extraction shards merge deterministically, and
  /// scoring writes per-candidate slots.
  unsigned Threads = 0;
  /// Per-program step budget for Phase 1 analysis and Phase 3 extraction
  /// (0 = unlimited). A program that exhausts its budget — or throws — is
  /// quarantined (recorded in PipelineStats::Quarantined with a reason)
  /// instead of aborting the run. Quarantine is in-place: the program keeps
  /// its corpus slot (empty graph, no samples), so per-program sample seeds
  /// hashValues(Seed, I) and shard boundaries are unchanged and the result
  /// stays bit-identical at any thread count.
  uint64_t ProgramStepBudget = 0;
};

/// One scored candidate specification.
struct ScoredCandidate {
  Spec S;
  double Score = 0;
  size_t Matches = 0;        ///< Pattern matches in the corpus.
  size_t Programs = 0;       ///< Distinct programs with a match.
  size_t NumConfidences = 0; ///< |ΓS| (single-edge matches scored by ϕ).
};

/// Prior state threaded into an incremental (warm-start) run; built from a
/// previously saved artifact by src/incremental/Trainer.
struct WarmStart {
  /// ϕ restored from the previous artifact. train() never resets existing
  /// per-position-pair models, so the delta samples continue SGD from these
  /// weights.
  EdgeModel Model;
  /// Candidate evidence accumulated over every program trained so far.
  CandidateLedger Ledger;
  /// Programs already trained through; delta program ids, sample seeds and
  /// fault indices continue from here so they match a full replay's.
  size_t BasePrograms = 0;
  /// Training-set size so far (reported cumulatively in LearnResult).
  size_t BaseTrainingSamples = 0;
};

/// Output of the pipeline.
struct LearnResult {
  EdgeModel Model;
  /// All candidates, sorted by descending score (ties broken by matches).
  std::vector<ScoredCandidate> Candidates;
  /// Specifications with score ≥ τ, closed under the §5.4 extension.
  SpecSet Selected;
  /// How many specs the consistency extension added.
  size_t AddedByExtension = 0;
  /// Training set size and in-sample accuracy of ϕ. After learnIncrement
  /// the sample count is cumulative (base + delta) while the accuracy is
  /// measured on the delta samples only.
  size_t NumTrainingSamples = 0;
  double TrainAccuracy = 0;
  /// The merged candidate evidence behind Candidates, in the same order.
  /// Incremental runs extend it; journal-trained artifacts persist it so
  /// the next delta can keep extending (DESIGN.md §12).
  CandidateLedger Ledger;
  /// Per-phase wall times and workload counters of this run. Observational
  /// only — never serialized into USPB artifacts (select(τ) byte-identity
  /// is independent of where or how fast a model was trained).
  PipelineStats Stats;
};

/// The USpec pipeline.
class USpecLearner {
public:
  USpecLearner(StringInterner &Strings, LearnerConfig Config)
      : Strings(Strings), Config(std::move(Config)) {}

  /// Runs the full pipeline over \p Corpus.
  LearnResult learn(const std::vector<IRProgram> &Corpus);

  /// Incremental continuation: runs the pipeline over \p Delta only —
  /// programs appended to the corpus after \p Prev was trained — warm-
  /// starting ϕ from Prev.Model and folding the new candidate evidence into
  /// Prev.Ledger. Per-program sample seeds and program ids are global
  /// (Prev.BasePrograms + i), exactly what a full retrain would use for the
  /// same positions, and the result is bit-identical at any thread count.
  /// Scores, selection and the extension run over the *combined* evidence.
  LearnResult learnIncrement(const std::vector<IRProgram> &Delta,
                             WarmStart Prev);

  /// Re-selects specifications at a different threshold \p Tau from already
  /// scored candidates (used by the precision/recall sweeps of Fig. 7, which
  /// must not retrain the model per τ).
  static SpecSet select(const std::vector<ScoredCandidate> &Candidates,
                        double Tau, bool Extend,
                        size_t *AddedByExtension = nullptr);

  /// Number of distinct API classes covered by \p Specs (§7.2 statistics).
  static size_t countApiClasses(const std::vector<ScoredCandidate> &Candidates);
  static size_t countApiClasses(const SpecSet &Specs);

  //===--------------------------------------------------------------------===//
  // Checkpointing (the USPB artifact layer). Declared here, implemented in
  // artifact/Checkpoint.cpp — link uspec_artifact to use them; core itself
  // does not depend on the artifact format.
  //===--------------------------------------------------------------------===//

  /// Serializes \p Result (plus this learner's config and, optionally, the
  /// corpus manifest) as a USPB artifact; see artifact/Checkpoint.h.
  std::string saveArtifacts(const LearnResult &Result,
                            const CorpusManifest *Manifest = nullptr) const;

  /// Loads a USPB artifact back; select() over the loaded candidates yields
  /// a SpecSet identical to the in-memory pipeline's at any τ.
  static std::optional<LearnArtifacts>
  loadArtifacts(std::string_view Bytes, StringInterner &Strings,
                ArtifactError *Err = nullptr);

private:
  StringInterner &Strings;
  LearnerConfig Config;
};

} // namespace uspec

#endif // USPEC_CORE_LEARNER_H
