//===- Naming.h - Naming-convention prior (§5.3 future work) ---*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5.3 closes with: "We believe scoring other patterns (or
/// e.g., naming conventions) using our probabilistic model is an
/// interesting future research direction." This module implements that
/// direction as a lightweight lexical prior over method names:
///
///  - reader-like names (get*, load*, fetch*, lookup*, find*, item, path,
///    Subscript Load, ...) support RetSame and RetArg targets;
///  - writer-like names (put*, set*, store*, add*, insert*, SubscriptStore,
///    ...) support RetArg sources;
///  - consuming names (next, pop, poll, take, read*) argue against RetSame;
///  - shared stems across a RetArg pair (getProperty/setProperty) earn a
///    bonus.
///
/// The prior combines multiplicatively-ish with the probabilistic score
/// (ScoreKind::NameAware): it sharpens ranking without being able to
/// overrule strong model evidence.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_NAMING_H
#define USPEC_CORE_NAMING_H

#include "specs/Spec.h"
#include "support/StringInterner.h"

namespace uspec {

/// Lexical role of a method name.
enum class NameRole : uint8_t {
  Reader,   ///< get/load/fetch/lookup/find/...
  Writer,   ///< put/set/store/add/insert/...
  Consumer, ///< next/pop/poll/take/read-and-advance
  Neutral,
};

/// Classifies a method name by its leading token.
NameRole classifyMethodName(const std::string &Name);

/// Shared-stem check: "getProperty"/"setProperty" → true.
bool namesShareStem(const std::string &A, const std::string &B);

/// Prior in [0, 1] that \p S is a valid specification, judged from method
/// names alone.
double namingPrior(const Spec &S, const StringInterner &Strings);

/// Blends the probabilistic score with the naming prior (equal weights,
/// clamped to [0, 1]).
double blendWithNamingPrior(double ModelScore, double Prior);

} // namespace uspec

#endif // USPEC_CORE_NAMING_H
