//===- Candidates.h - Candidate extraction & scoring (Alg. 1, §5.2) -*- C++-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alg. 1: for each event graph, enumerate call-site pairs with the same
/// receiver (bounded history distance, §7.1), match the specification
/// patterns, instantiate candidate specifications, and record the model's
/// confidence on each single induced edge. Scoring functions (§5.2) turn
/// the per-candidate confidence list ΓS into a score.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_CANDIDATES_H
#define USPEC_CORE_CANDIDATES_H

#include "core/Matching.h"
#include "model/EdgeModel.h"
#include "specs/Spec.h"
#include "support/Stats.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uspec {

/// Aggregated evidence for one candidate specification.
struct CandidateStats {
  /// ΓS: edge confidences from single-induced-edge matches.
  std::vector<double> Confidences;
  /// Total number of pattern matches (also multi-edge ones).
  size_t Matches = 0;
  /// Number of distinct programs with at least one match.
  size_t Programs = 0;
  std::unordered_set<uint32_t> ProgramIds;
};

/// The scoring alternatives discussed in §5.2/§7.2.
enum class ScoreKind : uint8_t {
  TopKMean,     ///< Mean of the k highest confidences (paper default, k=10).
  MaxConfidence,///< Highest confidence in ΓS.
  P95,          ///< 95th percentile of ΓS.
  MatchCount,   ///< Number of matches (ablation baseline).
  ProgramCount, ///< Number of programs with a match (ablation baseline).
  NameAware,    ///< Top-k mean blended with a naming-convention prior —
                ///< the §5.3 future-work direction (core/Naming.h).
};

/// Computes score(S) from aggregated stats.
double scoreCandidate(const CandidateStats &Stats, ScoreKind Kind,
                      size_t TopK);

/// Same scoring over bare evidence (the CandidateLedger representation,
/// which stores counts instead of program-id sets).
double scoreCandidate(const std::vector<double> &Confidences, size_t Matches,
                      size_t Programs, ScoreKind Kind, size_t TopK);

/// Collects candidate specifications across event graphs.
///
/// The collector is mergeable for sharded extraction: give each worker its
/// own collector over a contiguous range of graphs, then merge the shards
/// left-to-right (lowest graph range first) with merge(). The merged
/// collector is bit-identical — candidate order, per-candidate confidence
/// order, match/program counts — to one collector fed every graph serially
/// in the same overall order.
class CandidateCollector {
public:
  /// \p ExperimentalPatterns additionally instantiates the §5.3 extension
  /// pattern RetRecv on every call site with receiver and return events.
  CandidateCollector(const EdgeModel &Model, unsigned DistanceBound = 10,
                     bool ExperimentalPatterns = false)
      : Model(Model), DistanceBound(DistanceBound),
        Experimental(ExperimentalPatterns) {}

  /// Processes one event graph (Alg. 1). \p ProgramId identifies the program
  /// for per-program match statistics. With a budget, each receiver pair and
  /// each pattern probe consumes steps; on exhaustion extraction stops and
  /// returns false, leaving this collector with a PARTIAL contribution from
  /// \p G — callers that need all-or-nothing semantics stage the graph into
  /// a scratch collector and merge() only on success (see Learner Phase 3).
  /// Returns true when the graph was processed completely.
  bool addGraph(const EventGraph &G, uint32_t ProgramId, Budget *B = nullptr);

  /// Folds \p Other (a shard covering strictly later graphs) into this
  /// collector deterministically: first-seen candidate order is preserved
  /// (this shard's candidates keep their slots, Other's new ones append in
  /// Other's order), confidences concatenate in graph order, matches sum and
  /// program-id sets union. \p Other is consumed.
  void merge(CandidateCollector &&Other);

  /// Aggregated candidates. Deterministic order is provided by candidates().
  const std::unordered_map<Spec, CandidateStats, SpecHash> &stats() const {
    return Candidates;
  }

  /// Candidates in first-seen order.
  const std::vector<Spec> &candidates() const { return Order; }

  /// Receiver pairs enumerated / pattern matches recorded so far (Alg. 1
  /// workload counters; both are invariant under sharding + merge).
  size_t numReceiverPairs() const { return ReceiverPairsSeen; }
  size_t numMatches() const { return TotalMatches; }

private:
  void recordMatch(const Spec &S, const EventGraph &G,
                   const std::vector<InducedEdge> &Edges, uint32_t ProgramId);

  const EdgeModel &Model;
  unsigned DistanceBound;
  bool Experimental;
  std::unordered_map<Spec, CandidateStats, SpecHash> Candidates;
  std::vector<Spec> Order;
  size_t ReceiverPairsSeen = 0;
  size_t TotalMatches = 0;
};

/// A position-independent snapshot of the merged candidate evidence, carried
/// across incremental training runs (DESIGN.md §12). Unlike the collector it
/// keeps only the program *count* per candidate, not the id set — delta runs
/// cover strictly later programs, so their id sets are disjoint from
/// everything already folded in and the counts simply add.
struct CandidateLedger {
  struct Entry {
    Spec S;
    std::vector<double> Confidences; ///< ΓS in global graph order.
    size_t Matches = 0;
    size_t Programs = 0;
  };
  std::vector<Entry> Entries; ///< First-seen candidate order.

  /// Snapshot of a fully merged collector.
  static CandidateLedger fromCollector(const CandidateCollector &C);

  /// Folds a collector over strictly later graphs into the ledger with the
  /// same semantics as CandidateCollector::merge: known candidates keep
  /// their slots (confidences concatenate in graph order, matches and
  /// program counts sum), new ones append in \p Delta's first-seen order.
  void extendWith(const CandidateCollector &Delta);

  /// Ledger-to-ledger fold with the same semantics, for evidence that
  /// arrives already snapshotted (the distributed coordinator merges one
  /// ledger per corpus shard, in shard order). \p Other must cover strictly
  /// later graphs than everything folded in so far; program counts add
  /// because the covered program-id ranges are disjoint. \p Other is
  /// consumed.
  void extendWith(CandidateLedger &&Other);
};

} // namespace uspec

#endif // USPEC_CORE_CANDIDATES_H
