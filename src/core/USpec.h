//===- USpec.h - Umbrella header for the USpec library ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella header: pulls in the full public API of the USpec
/// reproduction. See README.md for a walkthrough and DESIGN.md for the
/// system inventory.
///
/// Typical use:
///  1. Parse + lower MiniLang sources (lang/Parser.h, ir/Lowering.h) or
///     generate a corpus (corpus/Generator.h).
///  2. Learn specifications with USpecLearner (core/Learner.h).
///  3. Run the API-aware may-alias analysis with the learned SpecSet
///     (pointsto/Analysis.h with AnalysisOptions::ApiAware).
///  4. Feed the result to client analyses (clients/Typestate.h,
///     clients/Taint.h).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_USPEC_H
#define USPEC_CORE_USPEC_H

#include "core/Candidates.h"
#include "core/Learner.h"
#include "core/Matching.h"
#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "model/EdgeModel.h"
#include "pointsto/Analysis.h"
#include "specs/Spec.h"

#endif // USPEC_CORE_USPEC_H
