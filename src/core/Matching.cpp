//===- Matching.cpp - Specification pattern matching (§5.1) -------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Matching.h"

using namespace uspec;

namespace {

/// C2: same receiver, via equality of the receivers' points-to sets
/// (allocation-event sets). Empty sets are rejected — an unknown receiver
/// must not be considered "the same" as another unknown receiver.
bool sameReceiver(const EventGraph &G, const CallSite &M1,
                  const CallSite &M2) {
  if (M1.Recv == InvalidEvent || M2.Recv == InvalidEvent)
    return false;
  const auto &A1 = G.allocOf(M1.Recv);
  const auto &A2 = G.allocOf(M2.Recv);
  if (A1.empty())
    return false;
  return A1 == A2;
}

/// C3: m2's receiver event precedes m1's.
bool calledBefore(const EventGraph &G, const CallSite &M1,
                  const CallSite &M2) {
  if (M1.Recv == InvalidEvent || M2.Recv == InvalidEvent)
    return false;
  return G.hasEdge(M2.Recv, M1.Recv);
}

/// equalG(m1, I1, m2, I2) over 1-based argument positions.
bool argsEqual(const EventGraph &G, const CallSite &M1, unsigned I1,
               const CallSite &M2, unsigned I2) {
  if (I1 < 1 || I1 > M1.Args.size() || I2 < 1 || I2 > M2.Args.size())
    return false;
  EventId A = M1.Args[I1 - 1];
  EventId B = M2.Args[I2 - 1];
  if (A == InvalidEvent || B == InvalidEvent)
    return false;
  return G.equalVals(A, B);
}

} // namespace

bool uspec::matchesRetSame(const EventGraph &G, const CallSite &M1,
                           const CallSite &M2, Budget *B) {
  if (B && !B->consume())
    return false;
  // C1: same method identifier (class, name, signature).
  if (M1.Method != M2.Method)
    return false;
  if (!sameReceiver(G, M1, M2) || !calledBefore(G, M1, M2))
    return false;
  // C4: all arguments equal.
  for (unsigned I = 1; I <= M1.nargs(); ++I)
    if (!argsEqual(G, M1, I, M2, I))
      return false;
  return true;
}

bool uspec::matchesRetArg(const EventGraph &G, const CallSite &M1,
                          const CallSite &M2, unsigned X, Budget *B) {
  if (B && !B->consume())
    return false;
  // C1': the storing method has exactly one extra argument.
  if (M2.nargs() != M1.nargs() + 1u)
    return false;
  if (X < 1 || X > M2.nargs())
    return false;
  if (!sameReceiver(G, M1, M2) || !calledBefore(G, M1, M2))
    return false;
  // C4': arguments around position x line up.
  for (unsigned I = 1; I < X; ++I)
    if (!argsEqual(G, M1, I, M2, I))
      return false;
  for (unsigned J = X + 1; J <= M2.nargs(); ++J)
    if (!argsEqual(G, M1, J - 1, M2, J))
      return false;
  return true;
}

std::vector<InducedEdge> uspec::inducedRetSame(const EventGraph &G,
                                               const CallSite &M1,
                                               const CallSite &M2) {
  std::vector<InducedEdge> Edges;
  if (M1.Ret == InvalidEvent || M2.Ret == InvalidEvent)
    return Edges;
  for (EventId E1 : G.children(M2.Ret))
    for (EventId E2 : G.children(M1.Ret))
      Edges.emplace_back(E1, E2);
  return Edges;
}

std::vector<InducedEdge> uspec::inducedRetRecv(const EventGraph &G,
                                               const CallSite &M) {
  std::vector<InducedEdge> Edges;
  if (M.Recv == InvalidEvent || M.Ret == InvalidEvent)
    return Edges;
  for (EventId E1 : G.allocOf(M.Recv))
    for (EventId E2 : G.children(M.Ret))
      Edges.emplace_back(E1, E2);
  return Edges;
}

std::vector<InducedEdge> uspec::inducedRetArg(const EventGraph &G,
                                              const CallSite &M1,
                                              const CallSite &M2,
                                              unsigned X) {
  std::vector<InducedEdge> Edges;
  if (M1.Ret == InvalidEvent || X < 1 || X > M2.Args.size() ||
      M2.Args[X - 1] == InvalidEvent)
    return Edges;
  for (EventId E1 : G.allocOf(M2.Args[X - 1]))
    for (EventId E2 : G.children(M1.Ret))
      Edges.emplace_back(E1, E2);
  return Edges;
}
