//===- Naming.cpp - Naming-convention prior (§5.3 future work) -----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Naming.h"

#include <algorithm>
#include <array>
#include <cctype>

using namespace uspec;

namespace {

std::string lowered(const std::string &Text) {
  std::string Out = Text;
  std::transform(Out.begin(), Out.end(), Out.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return Out;
}

bool startsWith(const std::string &Text, const char *Prefix) {
  return Text.rfind(Prefix, 0) == 0;
}

} // namespace

NameRole uspec::classifyMethodName(const std::string &Name) {
  std::string N = lowered(Name);
  // Consumers first: they often also start with "read"/"get"-like stems.
  static constexpr std::array<const char *, 6> Consumers = {
      "next", "pop", "poll", "take", "remove", "dequeue"};
  for (const char *P : Consumers)
    if (startsWith(N, P))
      return NameRole::Consumer;

  static constexpr std::array<const char *, 12> Readers = {
      "get",  "load",  "fetch", "lookup", "find", "read",
      "item", "path",  "peek",  "element", "opt", "subscriptload"};
  for (const char *P : Readers)
    if (startsWith(N, P))
      return NameRole::Reader;

  static constexpr std::array<const char *, 9> Writers = {
      "put", "set", "store", "add", "insert", "push", "write", "append",
      "subscriptstore"};
  for (const char *P : Writers)
    if (startsWith(N, P))
      return NameRole::Writer;

  return NameRole::Neutral;
}

bool uspec::namesShareStem(const std::string &A, const std::string &B) {
  std::string LA = lowered(A), LB = lowered(B);
  static constexpr std::array<const char *, 8> Prefixes = {
      "get", "set", "put", "load", "store", "read", "write", "opt"};
  auto Strip = [](const std::string &Name) {
    for (const char *P : Prefixes)
      if (startsWith(Name, P) && Name.size() > std::string(P).size())
        return Name.substr(std::string(P).size());
    return Name;
  };
  std::string SA = Strip(LA), SB = Strip(LB);
  return !SA.empty() && SA == SB && (SA != LA || SB != LB);
}

double uspec::namingPrior(const Spec &S, const StringInterner &Strings) {
  const std::string &Target = Strings.str(S.Target.Name);
  NameRole TargetRole = classifyMethodName(Target);

  switch (S.TheKind) {
  case Spec::Kind::RetSame:
    switch (TargetRole) {
    case NameRole::Reader:
      return 0.85;
    case NameRole::Consumer:
      return 0.1;
    case NameRole::Writer:
      return 0.25;
    case NameRole::Neutral:
      return 0.5;
    }
    return 0.5;

  case Spec::Kind::RetArg: {
    const std::string &Source = Strings.str(S.Source.Name);
    NameRole SourceRole = classifyMethodName(Source);
    double Prior;
    if (TargetRole == NameRole::Reader && SourceRole == NameRole::Writer)
      Prior = 0.85;
    else if (SourceRole == NameRole::Writer)
      Prior = 0.6;
    else if (TargetRole == NameRole::Reader)
      Prior = 0.5;
    else
      Prior = 0.25;
    if (namesShareStem(Target, Source))
      Prior = std::min(1.0, Prior + 0.1);
    return Prior;
  }

  case Spec::Kind::RetRecv:
    // Builder verbs look like writers that return something.
    return TargetRole == NameRole::Writer ? 0.6 : 0.3;
  }
  return 0.5;
}

double uspec::blendWithNamingPrior(double ModelScore, double Prior) {
  double Blend = 0.65 * ModelScore + 0.35 * Prior;
  return std::clamp(Blend, 0.0, 1.0);
}
