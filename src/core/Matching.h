//===- Matching.h - Specification pattern matching (§5.1) ------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Matching of the RetSame / RetArg specification patterns against call-site
/// pairs in an event graph, and the induced edges of a match (§5.1):
///
/// (m1, m2) matches RetSame(s) iff
///   (C1) id(m1) = id(m2)
///   (C2) allocG(⟨m1,0⟩) = allocG(⟨m2,0⟩)      (same receiver)
///   (C3) (⟨m2,0⟩, ⟨m1,0⟩) ∈ E                 (m2 called before m1)
///   (C4) ∀i. equalG(m1, i, m2, i)
///
/// (m1, m2) matches RetArg(t, s, x) iff C2, C3 and
///   (C1') nargs(m2) = nargs(m1) + 1
///   (C4') ∀i < x. equalG(m1,i,m2,i)  ∧  ∀j > x. equalG(m1,j−1,m2,j)
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORE_MATCHING_H
#define USPEC_CORE_MATCHING_H

#include "eventgraph/EventGraph.h"
#include "specs/Spec.h"
#include "support/Budget.h"

#include <utility>
#include <vector>

namespace uspec {

/// An induced edge (e1, e2).
using InducedEdge = std::pair<EventId, EventId>;

/// True iff the call-site pair (M1 later, M2 earlier) matches RetSame.
/// Each probe consumes one step of \p B when given; after exhaustion the
/// probe conservatively reports "no match" (the caller is expected to
/// quarantine or stop, not to trust further answers).
bool matchesRetSame(const EventGraph &G, const CallSite &M1,
                    const CallSite &M2, Budget *B = nullptr);

/// True iff the pair matches RetArg(id(M1), id(M2), X); X is 1-based.
bool matchesRetArg(const EventGraph &G, const CallSite &M1,
                   const CallSite &M2, unsigned X, Budget *B = nullptr);

/// Induced edges of a RetSame match: child(⟨m2,ret⟩) × child(⟨m1,ret⟩).
std::vector<InducedEdge> inducedRetSame(const EventGraph &G,
                                        const CallSite &M1,
                                        const CallSite &M2);

/// Induced edges of a RetArg match: allocG(⟨m2,x⟩) × child(⟨m1,ret⟩).
std::vector<InducedEdge> inducedRetArg(const EventGraph &G,
                                       const CallSite &M1, const CallSite &M2,
                                       unsigned X);

/// Induced edges of the experimental RetRecv pattern (§5.3): a single call
/// site m may return its receiver, inducing allocG(⟨m,0⟩) × child(⟨m,ret⟩).
std::vector<InducedEdge> inducedRetRecv(const EventGraph &G,
                                        const CallSite &M);

} // namespace uspec

#endif // USPEC_CORE_MATCHING_H
