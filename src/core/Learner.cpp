//===- Learner.cpp - The USpec learning pipeline (Fig. 1) ---------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Learner.h"

#include "core/Naming.h"
#include "eventgraph/EventGraph.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_set>

using namespace uspec;

namespace {

/// Runs \p Body(I) for I in [0, N) on \p Threads workers. Work items are
/// handed out through an atomic counter; \p Body must only touch index I's
/// slots so results are schedule-independent.
template <typename BodyFn>
void parallelFor(size_t N, unsigned Threads, BodyFn Body) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(1, N)));
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
        Body(I);
    });
  }
  for (std::thread &W : Workers)
    W.join();
}

} // namespace

LearnResult USpecLearner::learn(const std::vector<IRProgram> &Corpus) {
  assert(!Config.Analysis.ApiAware &&
         "learning runs on the API-unaware analysis");
  LearnResult Result;
  Result.Model = EdgeModel(Config.Model);
  size_t N = Corpus.size();

  // Phase 1 (§3): analyze each program and build its event graph. Programs
  // are independent, so this fans out across threads (the paper runs its
  // pipeline on a 28-core server, §7.2).
  std::vector<std::unique_ptr<AnalysisResult>> Analyses(N);
  std::vector<EventGraph> Graphs(N);
  // Phase 2a (§4.2): per-program training samples, seeded per program so
  // results do not depend on scheduling.
  std::vector<std::vector<TrainingSample>> PerProgramSamples(N);
  parallelFor(N, Config.Threads, [&](size_t I) {
    Analyses[I] = std::make_unique<AnalysisResult>(
        analyzeProgram(Corpus[I], Strings, Config.Analysis));
    Graphs[I] = EventGraph::build(*Analyses[I]);
    Rng Rand(hashValues(Config.Seed, I));
    collectTrainingSamples(Graphs[I], Rand, PerProgramSamples[I]);
  });

  // Phase 2b: train the model on the concatenated samples.
  std::vector<TrainingSample> Samples;
  for (std::vector<TrainingSample> &Local : PerProgramSamples) {
    Samples.insert(Samples.end(), std::make_move_iterator(Local.begin()),
                   std::make_move_iterator(Local.end()));
    Local.clear();
  }
  Result.NumTrainingSamples = Samples.size();
  Result.Model.train(Samples);
  Result.TrainAccuracy = Result.Model.accuracy(Samples);

  // Phase 3 (Alg. 1): candidate extraction and confidence collection.
  CandidateCollector Collector(Result.Model, Config.DistanceBound,
                               Config.ExperimentalPatterns);
  for (size_t I = 0; I < Graphs.size(); ++I)
    Collector.addGraph(Graphs[I], static_cast<uint32_t>(I));

  // Phase 4 (§5.2): scoring.
  for (const Spec &S : Collector.candidates()) {
    const CandidateStats &Stats = Collector.stats().at(S);
    ScoredCandidate C;
    C.S = S;
    C.Score = scoreCandidate(Stats, Config.Scoring, Config.TopK);
    if (Config.Scoring == ScoreKind::NameAware)
      C.Score = blendWithNamingPrior(C.Score, namingPrior(S, Strings));
    C.Matches = Stats.Matches;
    C.Programs = Stats.Programs;
    C.NumConfidences = Stats.Confidences.size();
    Result.Candidates.push_back(C);
  }
  std::stable_sort(Result.Candidates.begin(), Result.Candidates.end(),
                   [](const ScoredCandidate &A, const ScoredCandidate &B) {
                     if (A.Score != B.Score)
                       return A.Score > B.Score;
                     return A.Matches > B.Matches;
                   });

  // Phase 5 (§5.3–5.4): selection and consistency extension.
  Result.Selected =
      select(Result.Candidates, Config.Tau, Config.ExtendConsistency,
             &Result.AddedByExtension);
  return Result;
}

SpecSet USpecLearner::select(const std::vector<ScoredCandidate> &Candidates,
                             double Tau, bool Extend,
                             size_t *AddedByExtension) {
  SpecSet Selected;
  for (const ScoredCandidate &C : Candidates)
    if (C.Score >= Tau)
      Selected.insert(C.S);
  size_t Added = Extend ? Selected.extendConsistency() : 0;
  if (AddedByExtension)
    *AddedByExtension = Added;
  return Selected;
}

size_t USpecLearner::countApiClasses(
    const std::vector<ScoredCandidate> &Candidates) {
  std::unordered_set<uint32_t> Classes;
  for (const ScoredCandidate &C : Candidates)
    Classes.insert(C.S.Target.Class.id());
  return Classes.size();
}

size_t USpecLearner::countApiClasses(const SpecSet &Specs) {
  std::unordered_set<uint32_t> Classes;
  for (const Spec &S : Specs.all())
    Classes.insert(S.Target.Class.id());
  return Classes.size();
}
