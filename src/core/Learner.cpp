//===- Learner.cpp - The USpec learning pipeline (Fig. 1) ---------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Learner.h"

#include "core/Naming.h"
#include "eventgraph/EventGraph.h"
#include "support/Budget.h"
#include "support/FaultInject.h"
#include "support/ParallelFor.h"
#include "support/Trace.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

using namespace uspec;

LearnResult USpecLearner::learn(const std::vector<IRProgram> &Corpus) {
  assert(!Config.Analysis.ApiAware &&
         "learning runs on the API-unaware analysis");
  LearnResult Result;
  Result.Model = EdgeModel(Config.Model);
  size_t N = Corpus.size();

  unsigned Workers = effectiveThreads(std::max<size_t>(1, N), Config.Threads);
  Result.Stats.ThreadsUsed = Workers;
  Result.Stats.Programs = N;
  PhaseTimer Total, Phase;

  // Tracing is observational only: spans read clocks and buffer events but
  // never influence scheduling, seeds, or shard boundaries, so the learned
  // artifacts are bit-identical with tracing on or off (pinned by
  // TelemetryDeterminism tests).
  TraceSpan LearnSpan("learn");
  if (LearnSpan.active()) {
    LearnSpan.arg("programs", std::to_string(N));
    LearnSpan.arg("threads", std::to_string(Workers));
  }

  // Phase 1 (§3): analyze each program and build its event graph. Programs
  // are independent, so this fans out across threads (the paper runs its
  // pipeline on a 28-core server, §7.2).
  //
  // Per-program isolation (DESIGN.md §10): an analysis that throws or blows
  // its step budget quarantines that one program instead of aborting the
  // run. Quarantine is IN PLACE — the program keeps its slot with an empty
  // graph and no samples — so sample seeds hashValues(Seed, I) and Phase-3
  // shard boundaries are exactly those of the full corpus, keeping the
  // result bit-identical at any thread count.
  std::vector<std::unique_ptr<AnalysisResult>> Analyses(N);
  std::vector<EventGraph> Graphs(N);
  std::vector<std::string> QReason(N);
  // Phase 2a (§4.2): per-program training samples, seeded per program so
  // results do not depend on scheduling.
  std::vector<std::vector<TrainingSample>> PerProgramSamples(N);
  {
  TraceSpan PhaseSpan("learn.phase1_analyze");
  parallelFor(N, Config.Threads, [&](size_t I) {
    TraceSpan ProgramSpan("learn.program");
    if (ProgramSpan.active()) {
      ProgramSpan.arg("index", std::to_string(I));
      if (!Corpus[I].Name.empty())
        ProgramSpan.arg("name", Corpus[I].Name);
    }
    try {
      if (faultFiresAt("learn.analyze", I))
        throw FaultInjected("learn.analyze");
      Budget B = Budget::steps(Config.ProgramStepBudget);
      AnalysisOptions Opts = Config.Analysis;
      if (Config.ProgramStepBudget != 0)
        Opts.StepBudget = &B;
      Analyses[I] =
          std::make_unique<AnalysisResult>(analyzeProgram(Corpus[I], Strings, Opts));
      if (Analyses[I]->Bounded) {
        QReason[I] = std::string("analysis:") + B.reason();
        if (QReason[I] == "analysis:") // injected exhaustion, not the budget
          QReason[I] = "analysis:bounded";
        Analyses[I] = std::make_unique<AnalysisResult>();
        return;
      }
      Graphs[I] = EventGraph::build(*Analyses[I]);
      Rng Rand(hashValues(Config.Seed, I));
      collectTrainingSamples(Graphs[I], Rand, PerProgramSamples[I]);
    } catch (const FaultInjected &F) {
      QReason[I] = "fault:" + F.site();
      Analyses[I] = std::make_unique<AnalysisResult>();
      Graphs[I] = EventGraph();
      PerProgramSamples[I].clear();
    } catch (const std::exception &E) {
      QReason[I] = std::string("error:") + E.what();
      Analyses[I] = std::make_unique<AnalysisResult>();
      Graphs[I] = EventGraph();
      PerProgramSamples[I].clear();
    }
  });
  for (const EventGraph &G : Graphs)
    if (!G.callSites().empty())
      ++Result.Stats.Graphs;
  Result.Stats.AnalyzeSeconds = Phase.lap();
  }

  // Phase 2b: train the model on the concatenated samples.
  {
  TraceSpan PhaseSpan("learn.phase2_train");
  std::vector<TrainingSample> Samples;
  for (std::vector<TrainingSample> &Local : PerProgramSamples) {
    Samples.insert(Samples.end(), std::make_move_iterator(Local.begin()),
                   std::make_move_iterator(Local.end()));
    Local.clear();
  }
  Result.NumTrainingSamples = Samples.size();
  Result.Model.train(Samples);
  Result.TrainAccuracy = Result.Model.accuracy(Samples);
  Result.Stats.TrainingSamples = Samples.size();
  Result.Stats.TrainSeconds = Phase.lap();
  if (PhaseSpan.active())
    PhaseSpan.arg("samples", std::to_string(Samples.size()));
  }

  // Phase 3 (Alg. 1): candidate extraction and confidence collection,
  // sharded. Each worker runs Alg. 1 over its own contiguous range of
  // graphs into a private collector (ϕ queries are read-only), then the
  // shards fold left-to-right into shard 0. The merge preserves first-seen
  // candidate order and graph-order ΓS, so the merged table is bit-identical
  // to a serial pass at any shard count.
  unsigned NumShards = effectiveThreads(N, Config.Threads);
  std::vector<CandidateCollector> Shards;
  {
  TraceSpan PhaseSpan("learn.phase3_extract");
  Shards.reserve(std::max(1u, NumShards));
  for (unsigned S = 0; S < std::max(1u, NumShards); ++S)
    Shards.emplace_back(Result.Model, Config.DistanceBound,
                        Config.ExperimentalPatterns);
  parallelFor(NumShards, Config.Threads, [&](size_t S) {
    auto [Lo, Hi] = shardRange(N, static_cast<unsigned>(S), NumShards);
    for (size_t I = Lo; I < Hi; ++I) {
      if (!QReason[I].empty())
        continue; // quarantined in Phase 1; default graph has no analysis
      if (Config.ProgramStepBudget == 0) {
        Shards[S].addGraph(Graphs[I], static_cast<uint32_t>(I));
        continue;
      }
      // Budgeted extraction is all-or-nothing per graph: stage into a
      // scratch collector and merge only on completion, so a quarantined
      // graph contributes nothing (deterministic at any shard count; merge
      // is bit-identical to a direct addGraph, see PR 2 / parallel_test).
      Budget B = Budget::steps(Config.ProgramStepBudget);
      CandidateCollector Tmp(Result.Model, Config.DistanceBound,
                             Config.ExperimentalPatterns);
      if (Tmp.addGraph(Graphs[I], static_cast<uint32_t>(I), &B))
        Shards[S].merge(std::move(Tmp));
      else
        QReason[I] = "extract:steps";
    }
  });
  for (const CandidateCollector &Shard : Shards)
    Result.Stats.PeakCandidates += Shard.candidates().size();
  for (size_t S = 1; S < Shards.size(); ++S)
    Shards[0].merge(std::move(Shards[S]));
  }
  const CandidateCollector &Collector = Shards[0];
  Result.Stats.ReceiverPairs = Collector.numReceiverPairs();
  Result.Stats.Matches = Collector.numMatches();
  Result.Stats.Candidates = Collector.candidates().size();
  Result.Stats.ExtractSeconds = Phase.lap();

  // Phase 4 (§5.2): scoring, parallel over the merged candidate table. Each
  // worker writes only its candidate's slot; the stable sort then sees the
  // same sequence as a serial run.
  const std::vector<Spec> &Order = Collector.candidates();
  Result.Candidates.resize(Order.size());
  {
  TraceSpan PhaseSpan("learn.phase4_score");
  if (PhaseSpan.active())
    PhaseSpan.arg("candidates", std::to_string(Order.size()));
  parallelFor(Order.size(), Config.Threads, [&](size_t I) {
    const Spec &S = Order[I];
    const CandidateStats &Stats = Collector.stats().at(S);
    ScoredCandidate C;
    C.S = S;
    C.Score = scoreCandidate(Stats, Config.Scoring, Config.TopK);
    if (Config.Scoring == ScoreKind::NameAware)
      C.Score = blendWithNamingPrior(C.Score, namingPrior(S, Strings));
    C.Matches = Stats.Matches;
    C.Programs = Stats.Programs;
    C.NumConfidences = Stats.Confidences.size();
    Result.Candidates[I] = std::move(C);
  });
  std::stable_sort(Result.Candidates.begin(), Result.Candidates.end(),
                   [](const ScoredCandidate &A, const ScoredCandidate &B) {
                     if (A.Score != B.Score)
                       return A.Score > B.Score;
                     return A.Matches > B.Matches;
                   });
  Result.Stats.ScoreSeconds = Phase.lap();
  }

  // Phase 5 (§5.3–5.4): selection and consistency extension.
  {
  TraceSpan PhaseSpan("learn.phase5_select");
  Result.Selected =
      select(Result.Candidates, Config.Tau, Config.ExtendConsistency,
             &Result.AddedByExtension);
  Result.Stats.SelectSeconds = Phase.lap();
  }

  // The ledger snapshot carries the merged evidence into incremental runs
  // (DESIGN.md §12); journal-trained artifacts persist it.
  Result.Ledger = CandidateLedger::fromCollector(Collector);

  // Quarantine report, in corpus order (deterministic at any thread count).
  for (size_t I = 0; I < N; ++I)
    if (!QReason[I].empty())
      Result.Stats.Quarantined.push_back(
          QuarantineRecord{I, Corpus[I].Name, QReason[I]});

  Result.Stats.TotalSeconds = Total.lap();
  return Result;
}

LearnResult USpecLearner::learnIncrement(const std::vector<IRProgram> &Delta,
                                         WarmStart Prev) {
  assert(!Config.Analysis.ApiAware &&
         "learning runs on the API-unaware analysis");
  LearnResult Result;
  Result.Model = std::move(Prev.Model);
  Result.Ledger = std::move(Prev.Ledger);
  size_t N = Delta.size();
  size_t Base = Prev.BasePrograms;

  unsigned Workers = effectiveThreads(std::max<size_t>(1, N), Config.Threads);
  Result.Stats.ThreadsUsed = Workers;
  Result.Stats.Programs = N;
  PhaseTimer Total, Phase;

  TraceSpan LearnSpan("learn.increment");
  if (LearnSpan.active()) {
    LearnSpan.arg("base_programs", std::to_string(Base));
    LearnSpan.arg("delta_programs", std::to_string(N));
    LearnSpan.arg("threads", std::to_string(Workers));
  }

  // Phase 1 over the delta only. Seeds, program ids and fault indices are
  // *global corpus positions* (Base + I): exactly what a full replay of the
  // grown corpus uses for the same slots, so per-program sampling decisions
  // agree between the incremental and replay pipelines.
  std::vector<std::unique_ptr<AnalysisResult>> Analyses(N);
  std::vector<EventGraph> Graphs(N);
  std::vector<std::string> QReason(N);
  std::vector<std::vector<TrainingSample>> PerProgramSamples(N);
  {
  TraceSpan PhaseSpan("learn.phase1_analyze");
  parallelFor(N, Config.Threads, [&](size_t I) {
    TraceSpan ProgramSpan("learn.program");
    if (ProgramSpan.active()) {
      ProgramSpan.arg("index", std::to_string(Base + I));
      if (!Delta[I].Name.empty())
        ProgramSpan.arg("name", Delta[I].Name);
    }
    try {
      if (faultFiresAt("learn.analyze", Base + I))
        throw FaultInjected("learn.analyze");
      Budget B = Budget::steps(Config.ProgramStepBudget);
      AnalysisOptions Opts = Config.Analysis;
      if (Config.ProgramStepBudget != 0)
        Opts.StepBudget = &B;
      Analyses[I] = std::make_unique<AnalysisResult>(
          analyzeProgram(Delta[I], Strings, Opts));
      if (Analyses[I]->Bounded) {
        QReason[I] = std::string("analysis:") + B.reason();
        if (QReason[I] == "analysis:")
          QReason[I] = "analysis:bounded";
        Analyses[I] = std::make_unique<AnalysisResult>();
        return;
      }
      Graphs[I] = EventGraph::build(*Analyses[I]);
      Rng Rand(hashValues(Config.Seed, Base + I));
      collectTrainingSamples(Graphs[I], Rand, PerProgramSamples[I]);
    } catch (const FaultInjected &F) {
      QReason[I] = "fault:" + F.site();
      Analyses[I] = std::make_unique<AnalysisResult>();
      Graphs[I] = EventGraph();
      PerProgramSamples[I].clear();
    } catch (const std::exception &E) {
      QReason[I] = std::string("error:") + E.what();
      Analyses[I] = std::make_unique<AnalysisResult>();
      Graphs[I] = EventGraph();
      PerProgramSamples[I].clear();
    }
  });
  for (const EventGraph &G : Graphs)
    if (!G.callSites().empty())
      ++Result.Stats.Graphs;
  Result.Stats.AnalyzeSeconds = Phase.lap();
  }

  // Phase 2b: warm-start SGD continuation. train() shuffles the delta
  // samples deterministically and never resets existing per-pair models, so
  // the restored weights are the optimization's starting point. Accuracy is
  // measured on the delta samples (the base samples are gone); the sample
  // count reported is cumulative.
  {
  TraceSpan PhaseSpan("learn.phase2_train");
  std::vector<TrainingSample> Samples;
  for (std::vector<TrainingSample> &Local : PerProgramSamples) {
    Samples.insert(Samples.end(), std::make_move_iterator(Local.begin()),
                   std::make_move_iterator(Local.end()));
    Local.clear();
  }
  Result.NumTrainingSamples = Prev.BaseTrainingSamples + Samples.size();
  Result.Model.train(Samples);
  Result.TrainAccuracy = Result.Model.accuracy(Samples);
  Result.Stats.TrainingSamples = Samples.size();
  Result.Stats.TrainSeconds = Phase.lap();
  if (PhaseSpan.active())
    PhaseSpan.arg("samples", std::to_string(Samples.size()));
  }

  // Phase 3: sharded extraction over the delta graphs, merged left-to-right
  // exactly as in learn(), then folded into the carried ledger — known
  // candidates keep their slots, new ones append in first-seen order.
  unsigned NumShards = effectiveThreads(N, Config.Threads);
  std::vector<CandidateCollector> Shards;
  {
  TraceSpan PhaseSpan("learn.phase3_extract");
  Shards.reserve(std::max(1u, NumShards));
  for (unsigned S = 0; S < std::max(1u, NumShards); ++S)
    Shards.emplace_back(Result.Model, Config.DistanceBound,
                        Config.ExperimentalPatterns);
  parallelFor(NumShards, Config.Threads, [&](size_t S) {
    auto [Lo, Hi] = shardRange(N, static_cast<unsigned>(S), NumShards);
    for (size_t I = Lo; I < Hi; ++I) {
      if (!QReason[I].empty())
        continue;
      if (Config.ProgramStepBudget == 0) {
        Shards[S].addGraph(Graphs[I], static_cast<uint32_t>(Base + I));
        continue;
      }
      Budget B = Budget::steps(Config.ProgramStepBudget);
      CandidateCollector Tmp(Result.Model, Config.DistanceBound,
                             Config.ExperimentalPatterns);
      if (Tmp.addGraph(Graphs[I], static_cast<uint32_t>(Base + I), &B))
        Shards[S].merge(std::move(Tmp));
      else
        QReason[I] = "extract:steps";
    }
  });
  for (const CandidateCollector &Shard : Shards)
    Result.Stats.PeakCandidates += Shard.candidates().size();
  for (size_t S = 1; S < Shards.size(); ++S)
    Shards[0].merge(std::move(Shards[S]));
  Result.Ledger.extendWith(Shards[0]);
  }
  Result.Stats.ReceiverPairs = Shards[0].numReceiverPairs();
  Result.Stats.Matches = Shards[0].numMatches();
  Result.Stats.Candidates = Result.Ledger.Entries.size();
  Result.Stats.ExtractSeconds = Phase.lap();

  // Phase 4: scoring over the *combined* ledger (base + delta evidence),
  // parallel per candidate slot as in learn().
  Result.Candidates.resize(Result.Ledger.Entries.size());
  {
  TraceSpan PhaseSpan("learn.phase4_score");
  if (PhaseSpan.active())
    PhaseSpan.arg("candidates", std::to_string(Result.Ledger.Entries.size()));
  parallelFor(Result.Ledger.Entries.size(), Config.Threads, [&](size_t I) {
    const CandidateLedger::Entry &E = Result.Ledger.Entries[I];
    ScoredCandidate C;
    C.S = E.S;
    C.Score = scoreCandidate(E.Confidences, E.Matches, E.Programs,
                             Config.Scoring, Config.TopK);
    if (Config.Scoring == ScoreKind::NameAware)
      C.Score = blendWithNamingPrior(C.Score, namingPrior(E.S, Strings));
    C.Matches = E.Matches;
    C.Programs = E.Programs;
    C.NumConfidences = E.Confidences.size();
    Result.Candidates[I] = std::move(C);
  });
  std::stable_sort(Result.Candidates.begin(), Result.Candidates.end(),
                   [](const ScoredCandidate &A, const ScoredCandidate &B) {
                     if (A.Score != B.Score)
                       return A.Score > B.Score;
                     return A.Matches > B.Matches;
                   });
  Result.Stats.ScoreSeconds = Phase.lap();
  }

  // Phase 5: selection and consistency extension.
  {
  TraceSpan PhaseSpan("learn.phase5_select");
  Result.Selected =
      select(Result.Candidates, Config.Tau, Config.ExtendConsistency,
             &Result.AddedByExtension);
  Result.Stats.SelectSeconds = Phase.lap();
  }

  // Quarantine report, delta programs only, with global corpus indices.
  for (size_t I = 0; I < N; ++I)
    if (!QReason[I].empty())
      Result.Stats.Quarantined.push_back(
          QuarantineRecord{Base + I, Delta[I].Name, QReason[I]});

  Result.Stats.TotalSeconds = Total.lap();
  return Result;
}

SpecSet USpecLearner::select(const std::vector<ScoredCandidate> &Candidates,
                             double Tau, bool Extend,
                             size_t *AddedByExtension) {
  SpecSet Selected;
  for (const ScoredCandidate &C : Candidates)
    if (C.Score >= Tau)
      Selected.insert(C.S);
  size_t Added = Extend ? Selected.extendConsistency() : 0;
  if (AddedByExtension)
    *AddedByExtension = Added;
  return Selected;
}

size_t USpecLearner::countApiClasses(
    const std::vector<ScoredCandidate> &Candidates) {
  std::unordered_set<uint32_t> Classes;
  for (const ScoredCandidate &C : Candidates)
    Classes.insert(C.S.Target.Class.id());
  return Classes.size();
}

size_t USpecLearner::countApiClasses(const SpecSet &Specs) {
  std::unordered_set<uint32_t> Classes;
  for (const Spec &S : Specs.all())
    Classes.insert(S.Target.Class.id());
  return Classes.size();
}
