//===- FaultInject.cpp - Deterministic fault-injection registry -----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cstdlib>
#include <mutex>
#include <unistd.h>
#include <unordered_map>

using namespace uspec;

namespace {

struct Schedule {
  uint64_t Nth = 0;
  FaultAction Action = FaultAction::Throw;
  uint64_t Hits = 0; // counter sites only
};

struct Registry {
  std::mutex Mutex;
  std::unordered_map<std::string, Schedule> Sites;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Performs the armed action. Returns true for Soft; Throw and Kill do not
/// return.
bool act(const std::string &Site, FaultAction Action) {
  switch (Action) {
  case FaultAction::Soft:
    return true;
  case FaultAction::Kill:
    // Simulate `kill -9` at exactly this point: no unwinding, no flushing.
    ::_exit(137);
  case FaultAction::Throw:
    break;
  }
  throw FaultInjected(Site);
}

// Arm schedules from the environment before main() so that the fast-path
// atomic gate opens for child processes launched with USPEC_FAULT set.
struct EnvLoader {
  EnvLoader() { loadFaultsFromEnv(); }
} EnvLoaderInstance;

} // namespace

std::atomic<bool> uspec::detail::FaultsArmed{false};

bool uspec::detail::faultHit(const char *Site) {
  FaultAction Action;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    auto It = R.Sites.find(Site);
    if (It == R.Sites.end())
      return false;
    Schedule &S = It->second;
    if (++S.Hits != S.Nth)
      return false;
    Action = S.Action;
  }
  return act(Site, Action);
}

bool uspec::detail::faultHitAt(const char *Site, uint64_t Index) {
  FaultAction Action;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    auto It = R.Sites.find(Site);
    if (It == R.Sites.end() || It->second.Nth != Index)
      return false;
    Action = It->second.Action;
  }
  return act(Site, Action);
}

void uspec::armFault(const std::string &Site, uint64_t Nth,
                     FaultAction Action) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites[Site] = Schedule{Nth, Action, 0};
  detail::FaultsArmed.store(true, std::memory_order_relaxed);
}

void uspec::disarmFaults() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites.clear();
  detail::FaultsArmed.store(false, std::memory_order_relaxed);
}

bool uspec::armFaultsFromSpec(const std::string &Spec) {
  // site:nth[:throw|soft|kill][,site:nth[:action]...]
  size_t Pos = 0;
  bool ArmedAny = false;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;

    size_t C1 = Entry.find(':');
    if (C1 == std::string::npos || C1 == 0)
      return false;
    std::string Site = Entry.substr(0, C1);
    size_t C2 = Entry.find(':', C1 + 1);
    std::string NthStr = Entry.substr(
        C1 + 1, (C2 == std::string::npos ? Entry.size() : C2) - (C1 + 1));
    if (NthStr.empty() ||
        NthStr.find_first_not_of("0123456789") != std::string::npos)
      return false;
    uint64_t Nth = std::strtoull(NthStr.c_str(), nullptr, 10);

    FaultAction Action = FaultAction::Throw;
    if (C2 != std::string::npos) {
      std::string ActStr = Entry.substr(C2 + 1);
      if (ActStr == "throw")
        Action = FaultAction::Throw;
      else if (ActStr == "soft")
        Action = FaultAction::Soft;
      else if (ActStr == "kill")
        Action = FaultAction::Kill;
      else
        return false;
    }
    armFault(Site, Nth, Action);
    ArmedAny = true;
  }
  return ArmedAny;
}

void uspec::loadFaultsFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    if (const char *Env = std::getenv("USPEC_FAULT"))
      if (*Env)
        armFaultsFromSpec(Env);
  });
}
