//===- FaultInject.h - Deterministic fault-injection registry ---*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zero-cost-when-off registry of named fault sites. Production code marks
/// interesting failure points with
///
///   USPEC_FAULT_POINT("artifact.write");            // may throw / kill
///   if (USPEC_FAULT_SOFT("solver.step")) ...        // simulated exhaustion
///   if (faultFiresAt("learn.analyze", I)) ...       // per-index, det. under
///                                                   // any thread schedule
///
/// With nothing armed, every check is a single relaxed atomic load of one
/// global bool. Faults are armed either programmatically (tests) or via the
/// environment:
///
///   USPEC_FAULT=<site>:<nth>[:throw|soft|kill][,<site>:<nth>...]
///
/// `nth` is 1-based for counter sites ("fire on the nth hit") and 0-based
/// for indexed sites ("fire when the caller's index equals nth"). Actions:
///   throw — raise FaultInjected (default); exercises error-propagation paths
///   soft  — faultFires() returns true; callers treat it as budget exhaustion
///   kill  — _exit(137), simulating `kill -9` at exactly that point
///
/// The catalog of sites lives in DESIGN.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_FAULTINJECT_H
#define USPEC_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <stdexcept>
#include <string>

namespace uspec {

/// Thrown by an armed fault site with action `throw`.
class FaultInjected : public std::runtime_error {
public:
  explicit FaultInjected(const std::string &Site)
      : std::runtime_error("injected fault at site '" + Site + "'"),
        SiteName(Site) {}
  const std::string &site() const { return SiteName; }

private:
  std::string SiteName;
};

enum class FaultAction {
  Throw, ///< raise FaultInjected
  Soft,  ///< report "fired" to the caller; no exception
  Kill,  ///< _exit(137) — simulate kill -9 at this exact point
};

namespace detail {
extern std::atomic<bool> FaultsArmed;
/// Slow path; only reached when at least one fault is armed.
bool faultHit(const char *Site);
bool faultHitAt(const char *Site, uint64_t Index);
} // namespace detail

/// Counter-based site: returns true (Soft) or throws/kills when the armed
/// nth hit of \p Site is reached. Call order must be deterministic for the
/// schedule to be reproducible — use only on sequential paths.
inline bool faultFires(const char *Site) {
  if (!detail::FaultsArmed.load(std::memory_order_relaxed))
    return false;
  return detail::faultHit(Site);
}

/// Index-based site: fires iff \p Index equals the armed value. Safe under
/// any thread schedule (per-program / per-shard work).
inline bool faultFiresAt(const char *Site, uint64_t Index) {
  if (!detail::FaultsArmed.load(std::memory_order_relaxed))
    return false;
  return detail::faultHitAt(Site, Index);
}

/// Arm \p Site to fire on its \p Nth hit (counter sites, 1-based) or at
/// index \p Nth (indexed sites). Replaces any previous schedule for the
/// same site. Thread-safe; intended for tests.
void armFault(const std::string &Site, uint64_t Nth,
              FaultAction Action = FaultAction::Throw);

/// Clear every armed fault and hit counter, including schedules loaded from
/// USPEC_FAULT (tests call this to neutralize ambient environment).
void disarmFaults();

/// Parse and arm a USPEC_FAULT-style spec ("site:nth[:action],...").
/// Returns false (arming nothing) on malformed input.
bool armFaultsFromSpec(const std::string &Spec);

/// Load schedules from the USPEC_FAULT environment variable, once per
/// process. Called lazily by the first fault check; exposed for tests.
void loadFaultsFromEnv();

/// Convenience macro for throw/kill sites: evaluates to a statement.
#define USPEC_FAULT_POINT(SiteStr)                                             \
  do {                                                                         \
    (void)::uspec::faultFires(SiteStr);                                        \
  } while (false)

/// Convenience macro for soft sites: expression, true when the fault fired.
#define USPEC_FAULT_SOFT(SiteStr) (::uspec::faultFires(SiteStr))

} // namespace uspec

#endif // USPEC_SUPPORT_FAULTINJECT_H
