//===- FlatMap.h - Open-addressed flat hash containers ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-friendly replacements for the node-per-allocation
/// `std::unordered_map<uint64_t, V>` lookups on the learn() worklist path:
///
///   Span<T>       — a trivially-copyable (pointer, size) view over
///                   contiguous elements; what the struct-of-arrays event
///                   graph hands out instead of `const std::vector<T> &`.
///   FlatMap64<V>  — open-addressed linear-probe map keyed by uint64_t
///                   (pre-hashed keys: hashValues/hashString outputs). One
///                   flat slot array, no per-node allocation, no erase.
///   FlatSet64     — membership-only variant (dispatch dedup, seen-pair
///                   sets).
///
/// Keys are expected to already be well-mixed 64-bit hashes; the containers
/// re-mix with mix64 before probing so adversarially aligned keys (dense
/// site ids shifted into the high word) still spread. Determinism: probing
/// affects only lookup cost, never iteration-visible state — all pipeline
/// orderings derive from dense ids or explicit sorts, not from map order.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_FLATMAP_H
#define USPEC_SUPPORT_FLATMAP_H

#include "support/Hashing.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uspec {

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

/// Minimal contiguous view (the project builds with C++17; std::span is not
/// available). Supports everything the event-graph consumers use: ranged
/// for, size/empty, indexing, begin/end for the <algorithm> predicates, and
/// element-wise equality.
template <typename T> class Span {
public:
  Span() = default;
  Span(const T *Data, size_t Size) : Data_(Data), Size_(Size) {}

  const T *begin() const { return Data_; }
  const T *end() const { return Data_ + Size_; }
  const T *data() const { return Data_; }
  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }
  const T &operator[](size_t I) const {
    assert(I < Size_ && "span index out of range");
    return Data_[I];
  }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Size_ - 1]; }

  friend bool operator==(Span A, Span B) {
    if (A.Size_ != B.Size_)
      return false;
    for (size_t I = 0; I < A.Size_; ++I)
      if (!(A.Data_[I] == B.Data_[I]))
        return false;
    return true;
  }
  friend bool operator!=(Span A, Span B) { return !(A == B); }
  friend bool operator==(Span A, const std::vector<T> &B) {
    return A == Span(B.data(), B.size());
  }
  friend bool operator==(const std::vector<T> &A, Span B) {
    return Span(A.data(), A.size()) == B;
  }

private:
  const T *Data_ = nullptr;
  size_t Size_ = 0;
};

//===----------------------------------------------------------------------===//
// FlatMap64
//===----------------------------------------------------------------------===//

/// Open-addressed map from pre-hashed uint64_t keys to V. Insert-only (the
/// analysis tables never erase), power-of-two capacity, linear probing,
/// grows at ~70% load. Values must be movable; slots for absent entries
/// hold default-constructed V.
template <typename V> class FlatMap64 {
public:
  FlatMap64() = default;

  void reserve(size_t N) {
    size_t Want = nextPow2(N + N / 2 + 1);
    if (Want > Slots.size())
      rehash(Want);
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  V *find(uint64_t Key) {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = mix64(Key) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used)
        return nullptr;
      if (S.Key == Key)
        return &S.Value;
    }
  }

  const V *find(uint64_t Key) const {
    return const_cast<FlatMap64 *>(this)->find(Key);
  }

  /// Returns the value slot for \p Key, default-constructing it on first
  /// sight. \p Inserted (optional) reports whether the key was new.
  V &getOrCreate(uint64_t Key, bool *Inserted = nullptr) {
    if (Slots.size() - Count * 10 / 7 <= Count || Slots.empty())
      rehash(Slots.empty() ? 16 : Slots.size() * 2);
    size_t Mask = Slots.size() - 1;
    for (size_t I = mix64(Key) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used) {
        S.Used = true;
        S.Key = Key;
        ++Count;
        if (Inserted)
          *Inserted = true;
        return S.Value;
      }
      if (S.Key == Key) {
        if (Inserted)
          *Inserted = false;
        return S.Value;
      }
    }
  }

  /// Visits every (key, value) pair. Order is the probe-table order —
  /// callers needing determinism must sort or use dense ids.
  template <typename Fn> void forEach(Fn F) const {
    for (const Slot &S : Slots)
      if (S.Used)
        F(S.Key, S.Value);
  }

  template <typename Fn> void forEachMutable(Fn F) {
    for (Slot &S : Slots)
      if (S.Used)
        F(S.Key, S.Value);
  }

  void clear() {
    Slots.clear();
    Count = 0;
  }

private:
  struct Slot {
    uint64_t Key = 0;
    V Value{};
    bool Used = false;
  };

  static size_t nextPow2(size_t N) {
    size_t P = 16;
    while (P < N)
      P *= 2;
    return P;
  }

  void rehash(size_t NewCap) {
    std::vector<Slot> Old;
    Old.swap(Slots);
    Slots.resize(NewCap);
    size_t Mask = NewCap - 1;
    for (Slot &S : Old) {
      if (!S.Used)
        continue;
      for (size_t I = mix64(S.Key) & Mask;; I = (I + 1) & Mask) {
        if (!Slots[I].Used) {
          Slots[I] = std::move(S);
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

//===----------------------------------------------------------------------===//
// FlatSet64
//===----------------------------------------------------------------------===//

/// Membership-only companion of FlatMap64 (dispatch-dedup and seen-pair
/// tracking on the solver/extraction hot paths).
class FlatSet64 {
public:
  void reserve(size_t N) { Map.reserve(N); }
  size_t size() const { return Map.size(); }

  /// Returns true when \p Key was newly inserted.
  bool insert(uint64_t Key) {
    bool Inserted = false;
    Map.getOrCreate(Key, &Inserted);
    return Inserted;
  }

  bool contains(uint64_t Key) const { return Map.find(Key) != nullptr; }
  void clear() { Map.clear(); }

private:
  struct Empty {};
  FlatMap64<Empty> Map;
};

} // namespace uspec

#endif // USPEC_SUPPORT_FLATMAP_H
