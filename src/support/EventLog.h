//===- EventLog.h - Structured fleet event log ------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide structured event log for fleet lifecycle transitions
/// (probe failures, respawns, rejoins, hedges, reloads, shard reassignment).
/// Events are JSONL: one self-contained JSON object per line, so the log is
/// greppable, tailable, and mergeable across processes without a reader that
/// holds state.
///
/// Line schema (version 1):
///
///   {"v":1,"seq":N,"ts_ms":WALLCLOCK_MS,"pid":PID,"type":"TYPE",...fields}
///
/// `v` is the schema version, `seq` a per-process monotonic sequence number
/// (gap-free within a session; readers order same-pid events by it), `ts_ms`
/// wall-clock milliseconds since the Unix epoch (readers order cross-process
/// events by it, coarsely), and `type` the transition name. Extra fields are
/// caller-supplied string key/values appended flat; the keys `v`, `seq`,
/// `ts_ms`, `pid`, and `type` are reserved.
///
/// Durability discipline: each line is appended with a single O_APPEND
/// write(2), so concurrent writers (multiple threads, or multiple processes
/// sharing one log file) never interleave bytes mid-line. When the file
/// would exceed the size cap the log rotates: the live file is renamed to
/// `PATH.1` (replacing any previous `.1`) and a fresh `PATH` is opened, so a
/// misbehaving fleet caps at twice the configured size.
///
/// Overhead discipline (same as FaultInject and Trace): when no log is
/// armed, emit() costs exactly one relaxed atomic load — no clock read, no
/// allocation, no syscall. Call sites that build argument strings guard with
/// enabled() so the strings are never constructed when the log is off.
/// Event logging only observes; it must never perturb pipeline determinism.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_EVENTLOG_H
#define USPEC_SUPPORT_EVENTLOG_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace uspec {
namespace events {

/// Current JSONL schema version, stamped into every line as `"v"`.
constexpr unsigned SchemaVersion = 1;

namespace detail {
extern std::atomic<bool> EventsArmed;
void emitImpl(const char *Type,
              std::vector<std::pair<const char *, std::string>> Fields);
} // namespace detail

/// True while an event log is armed. The one-relaxed-load fast path.
inline bool enabled() {
  return detail::EventsArmed.load(std::memory_order_relaxed);
}

/// Arms the event log appending to \p Path (created if absent). Returns
/// false (with *Err set) if the path cannot be opened; the log is not armed
/// then. \p MaxBytes caps the live file before rotation to `PATH.1`
/// (0 keeps the current/default cap).
bool startToFile(const std::string &Path, uint64_t MaxBytes = 0,
                 std::string *Err = nullptr);

/// Disarms the log and closes the file. Safe to call when not armed.
void finish();

/// Arms from USPEC_EVENTS=events.jsonl, once per process. An optional
/// USPEC_EVENTS_MAX_BYTES overrides the rotation cap.
void loadFromEnv();

/// Appends one event line. \p Type must be a string literal (or otherwise
/// outlive the call); field keys likewise. No-op costing one relaxed load
/// when the log is disarmed — but guard field-string construction with
/// enabled() at the call site.
inline void emit(const char *Type,
                 std::vector<std::pair<const char *, std::string>> Fields = {}) {
  if (enabled())
    detail::emitImpl(Type, std::move(Fields));
}

} // namespace events
} // namespace uspec

#endif // USPEC_SUPPORT_EVENTLOG_H
