//===- Hashing.h - Hash utilities for feature encoding ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit hashing used for sparse feature encoding (the paper
/// encodes every event-graph path and every auxiliary element as an integer
/// in an over-100-million-dimensional space; we use hashed features the same
/// way Vowpal Wabbit does).
///
/// FROZEN: the outputs of mix64/hashCombine/hashString/hashValues are part
/// of the on-disk contract — artifact container checksums, journal chain
/// checksums, feature ids inside trained models, and service cache keys all
/// derive from them. Changing any of these functions invalidates every
/// committed .uspb/.uspj and breaks warm-train eligibility. New code that
/// only needs a fast internal index (and never persists the hash) should
/// use hashBytesWide instead.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_HASHING_H
#define USPEC_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string_view>

namespace uspec {

/// Finalizer from SplitMix64; a cheap, well-mixing 64-bit bijection.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Order-dependent combination of two hash values.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

/// FNV-1a over a byte string; used for hashing raw text.
inline uint64_t hashString(std::string_view Str) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (unsigned char C : Str) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return mix64(Hash);
}

/// Variadic convenience: hash an arbitrary sequence of integers.
template <typename... Ts> uint64_t hashValues(Ts... Values) {
  uint64_t Seed = 0x12345678deadbeefULL;
  ((Seed = hashCombine(Seed, static_cast<uint64_t>(Values))), ...);
  return Seed;
}

/// Word-at-a-time string hash for *internal, never-persisted* indexes (the
/// interner's open-addressed table). Consumes 8 bytes per multiply via
/// unaligned loads — the memcpy compiles to a single mov and the loop
/// auto-vectorizes — instead of hashString's byte-at-a-time FNV walk. NOT
/// interchangeable with hashString: different outputs by design, so a
/// persisted hashBytesWide value would be a bug.
inline uint64_t hashBytesWide(std::string_view Str) {
  const char *P = Str.data();
  size_t N = Str.size();
  uint64_t Hash = 0x9e3779b97f4a7c15ULL ^ (uint64_t)N;
  while (N >= 8) {
    uint64_t Word;
    std::memcpy(&Word, P, 8);
    Hash = (Hash ^ mix64(Word)) * 0x100000001b3ULL;
    P += 8;
    N -= 8;
  }
  if (N > 0) {
    uint64_t Word = 0;
    std::memcpy(&Word, P, N);
    Hash = (Hash ^ mix64(Word)) * 0x100000001b3ULL;
  }
  return mix64(Hash);
}

} // namespace uspec

#endif // USPEC_SUPPORT_HASHING_H
