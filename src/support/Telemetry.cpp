//===- Telemetry.cpp - Process-wide metrics registry ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

using namespace uspec;
using namespace uspec::telemetry;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  for (unsigned I = 0; I < HistogramBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  if (Other.Max > Max)
    Max = Other.Max;
}

uint64_t HistogramSnapshot::percentileNs(double Q) const {
  assert(Q >= 0 && Q <= 1 && "quantile out of range");
  if (Count == 0)
    return 0;
  // Nearest rank on the quantized samples: the sorted vector's element at
  // index floor(Q * N), clamped — the same rule as uspec::percentile().
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank >= Count)
    Rank = Count - 1;
  uint64_t Cumulative = 0;
  for (unsigned I = 0; I < HistogramBuckets; ++I) {
    Cumulative += Buckets[I];
    if (Cumulative > Rank)
      return histogramBucketUpperBound(I);
  }
  return histogramBucketUpperBound(HistogramBuckets - 1);
}

void Histogram::accumulate(HistogramSnapshot &Out) const {
  for (unsigned I = 0; I < HistogramBuckets; ++I)
    Out.Buckets[I] += Buckets_[I].load(std::memory_order_relaxed);
  Out.Count += Count_.load(std::memory_order_relaxed);
  Out.Sum += Sum_.load(std::memory_order_relaxed);
  uint64_t M = Max_.load(std::memory_order_relaxed);
  if (M > Out.Max)
    Out.Max = M;
}

unsigned ShardedHistogram::shardIndex() {
  // Threads are striped over shards round-robin at first use; the mapping is
  // stable per thread so a worker always hits the same cache line.
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}

HistogramSnapshot ShardedHistogram::snapshot() const {
  HistogramSnapshot S;
  for (const PaddedShard &Shard : Shards_)
    Shard.H.accumulate(S);
  return S;
}

//===----------------------------------------------------------------------===//
// Prometheus rendering helpers
//===----------------------------------------------------------------------===//

void telemetry::appendPromValue(std::string &Out, double V) {
  // Counters are integers that can exceed %.9g's mantissa: print every
  // integral value exactly up to 2^53 so large counts round-trip through
  // the exposition untruncated; only genuine fractions use %.9g.
  char Buf[64];
  double Whole;
  if (std::modf(V, &Whole) == 0.0 && std::fabs(V) < 9007199254740992.0)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

static void appendPromHeader(std::string &Out, std::string_view Name,
                             std::string_view Help, const char *Type) {
  if (!Help.empty()) {
    Out += "# HELP ";
    Out += Name;
    Out += ' ';
    Out += Help;
    Out += '\n';
  }
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

static void appendSample(std::string &Out, std::string_view Name, double V) {
  Out += Name;
  Out += ' ';
  appendPromValue(Out, V);
  Out += '\n';
}

void telemetry::appendPromGauge(std::string &Out, std::string_view Name,
                                std::string_view Help, double V) {
  appendPromHeader(Out, Name, Help, "gauge");
  appendSample(Out, Name, V);
}

void telemetry::appendPromCounter(std::string &Out, std::string_view Name,
                                  std::string_view Help, double V) {
  appendPromHeader(Out, Name, Help, "counter");
  appendSample(Out, Name, V);
}

void telemetry::appendPromHistogram(std::string &Out, std::string_view Name,
                                    std::string_view Help,
                                    const HistogramSnapshot &S) {
  appendPromHeader(Out, Name, Help, "histogram");
  unsigned Highest = 0;
  for (unsigned I = 0; I < HistogramBuckets; ++I)
    if (S.Buckets[I] != 0)
      Highest = I;
  uint64_t Cumulative = 0;
  for (unsigned I = 0; I <= Highest; ++I) {
    Cumulative += S.Buckets[I];
    Out += Name;
    Out += "_bucket{le=\"";
    appendPromValue(Out,
                    static_cast<double>(histogramBucketUpperBound(I)) / 1e9);
    Out += "\"} ";
    appendPromValue(Out, static_cast<double>(Cumulative));
    Out += '\n';
  }
  Out += Name;
  Out += "_bucket{le=\"+Inf\"} ";
  appendPromValue(Out, static_cast<double>(S.Count));
  Out += '\n';
  appendSample(Out, std::string(Name) + "_sum", S.sumSeconds());
  appendSample(Out, std::string(Name) + "_count",
               static_cast<double>(S.Count));
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

namespace {

enum class MetricKind { Counter, Gauge, Histogram, GaugeFn };

struct MetricEntry {
  std::string Name;
  std::string Help;
  MetricKind Kind;
  // Exactly one of these is live, selected by Kind. Deque storage below
  // keeps the addresses stable for the registry's lifetime.
  Counter *C = nullptr;
  Gauge *G = nullptr;
  ShardedHistogram *H = nullptr;
  std::function<double()> Fn;
};

} // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex Mutex;
  std::vector<MetricEntry> Entries; // registration order, for rendering
  std::deque<Counter> Counters;
  std::deque<Gauge> Gauges;
  std::deque<ShardedHistogram> Histograms;

  MetricEntry *find(std::string_view Name) {
    for (MetricEntry &E : Entries)
      if (E.Name == Name)
        return &E;
    return nullptr;
  }
};

MetricsRegistry::MetricsRegistry() : M(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete M; }

Counter &MetricsRegistry::counter(std::string_view Name,
                                  std::string_view Help) {
  std::lock_guard<std::mutex> Lock(M->Mutex);
  if (MetricEntry *E = M->find(Name)) {
    assert(E->Kind == MetricKind::Counter && "metric kind mismatch");
    return *E->C;
  }
  Counter &C = M->Counters.emplace_back();
  M->Entries.push_back({std::string(Name), std::string(Help),
                        MetricKind::Counter, &C, nullptr, nullptr, {}});
  return C;
}

Gauge &MetricsRegistry::gauge(std::string_view Name, std::string_view Help) {
  std::lock_guard<std::mutex> Lock(M->Mutex);
  if (MetricEntry *E = M->find(Name)) {
    assert(E->Kind == MetricKind::Gauge && "metric kind mismatch");
    return *E->G;
  }
  Gauge &G = M->Gauges.emplace_back();
  M->Entries.push_back({std::string(Name), std::string(Help),
                        MetricKind::Gauge, nullptr, &G, nullptr, {}});
  return G;
}

ShardedHistogram &MetricsRegistry::histogram(std::string_view Name,
                                             std::string_view Help) {
  std::lock_guard<std::mutex> Lock(M->Mutex);
  if (MetricEntry *E = M->find(Name)) {
    assert(E->Kind == MetricKind::Histogram && "metric kind mismatch");
    return *E->H;
  }
  ShardedHistogram &H = M->Histograms.emplace_back();
  M->Entries.push_back({std::string(Name), std::string(Help),
                        MetricKind::Histogram, nullptr, nullptr, &H, {}});
  return H;
}

void MetricsRegistry::gaugeFn(std::string_view Name, std::string_view Help,
                              std::function<double()> Fn) {
  std::lock_guard<std::mutex> Lock(M->Mutex);
  if (MetricEntry *E = M->find(Name)) {
    assert(E->Kind == MetricKind::GaugeFn && "metric kind mismatch");
    E->Fn = std::move(Fn);
    return;
  }
  M->Entries.push_back({std::string(Name), std::string(Help),
                        MetricKind::GaugeFn, nullptr, nullptr, nullptr,
                        std::move(Fn)});
}

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(M->Mutex);
  std::string Out;
  Out.reserve(1024);
  for (const MetricEntry &E : M->Entries) {
    switch (E.Kind) {
    case MetricKind::Counter:
      appendPromCounter(Out, E.Name, E.Help,
                        static_cast<double>(E.C->value()));
      break;
    case MetricKind::Gauge:
      appendPromGauge(Out, E.Name, E.Help, static_cast<double>(E.G->value()));
      break;
    case MetricKind::GaugeFn:
      appendPromGauge(Out, E.Name, E.Help, E.Fn ? E.Fn() : 0);
      break;
    case MetricKind::Histogram:
      appendPromHistogram(Out, E.Name, E.Help, E.H->snapshot());
      break;
    }
  }
  return Out;
}
