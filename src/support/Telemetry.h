//===- Telemetry.h - Process-wide metrics registry --------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free metrics primitives and a named registry with a Prometheus
/// text-exposition renderer.
///
/// Counters and gauges are single relaxed atomics. Histograms use fixed
/// 64-bucket log2 arrays: a value v (a duration in nanoseconds) lands in
/// bucket bit_width(v), i.e. bucket i holds [2^(i-1), 2^i - 1] with bucket 0
/// reserved for v == 0. Recording is wait-free (three relaxed atomic RMWs on
/// a per-thread shard); reading merges shards into a plain snapshot.
/// Percentiles are exact over the bucket-quantized samples: a snapshot
/// reports the nearest-rank percentile with each sample represented by its
/// bucket's inclusive upper bound, which by construction equals
/// uspec::percentile() applied to the quantized sample vector.
///
/// The registry hands out stable references (deque-backed, mutex only at
/// registration/render time — never on the record path). ServiceMetrics and
/// the `metrics` service verb render from here; DESIGN.md §11 documents the
/// layering.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_TELEMETRY_H
#define USPEC_SUPPORT_TELEMETRY_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace uspec {
namespace telemetry {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { Value_.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value_.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value_{0};
};

/// Instantaneous signed level (queue depth, resident entries, ...).
class Gauge {
public:
  void set(int64_t V) { Value_.store(V, std::memory_order_relaxed); }
  void add(int64_t N) { Value_.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return Value_.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value_{0};
};

/// Number of log2 buckets; covers the full uint64_t range.
inline constexpr unsigned HistogramBuckets = 64;

/// Bucket index for \p V: 0 for 0, otherwise bit_width(V) clamped to 63.
inline constexpr unsigned histogramBucketFor(uint64_t V) {
  unsigned W = static_cast<unsigned>(std::bit_width(V));
  return W < HistogramBuckets ? W : HistogramBuckets - 1;
}

/// Inclusive upper bound of bucket \p I (the percentile representative).
inline constexpr uint64_t histogramBucketUpperBound(unsigned I) {
  if (I == 0)
    return 0;
  if (I >= HistogramBuckets - 1)
    return ~0ull;
  return (1ull << I) - 1;
}

/// Plain (non-atomic) merged view of one or more histogram shards.
struct HistogramSnapshot {
  std::array<uint64_t, HistogramBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0; // nanoseconds
  uint64_t Max = 0; // exact, not bucket-quantized

  void merge(const HistogramSnapshot &Other);

  /// Nearest-rank percentile (0 <= Q <= 1) over the recorded samples with
  /// each sample quantized to its bucket's upper bound; 0 when empty.
  /// Matches uspec::percentile() on the quantized sample vector exactly.
  uint64_t percentileNs(double Q) const;
  double percentileSeconds(double Q) const {
    return static_cast<double>(percentileNs(Q)) / 1e9;
  }
  double sumSeconds() const { return static_cast<double>(Sum) / 1e9; }
  double maxSeconds() const { return static_cast<double>(Max) / 1e9; }
};

/// One mergeable histogram shard. All mutation is relaxed-atomic and
/// wait-free; use ShardedHistogram for contended multi-writer series.
class Histogram {
public:
  void record(uint64_t V) {
    Buckets_[histogramBucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    Count_.fetch_add(1, std::memory_order_relaxed);
    Sum_.fetch_add(V, std::memory_order_relaxed);
    uint64_t Prev = Max_.load(std::memory_order_relaxed);
    while (Prev < V && !Max_.compare_exchange_weak(Prev, V,
                                                   std::memory_order_relaxed))
      ;
  }

  /// Adds this shard's contents into \p Out.
  void accumulate(HistogramSnapshot &Out) const;

private:
  std::array<std::atomic<uint64_t>, HistogramBuckets> Buckets_{};
  std::atomic<uint64_t> Count_{0};
  std::atomic<uint64_t> Sum_{0};
  std::atomic<uint64_t> Max_{0};
};

/// A latency series sharded across cache lines by thread so concurrent
/// workers never contend on the same counters. snapshot() merges the shards.
class ShardedHistogram {
public:
  void record(uint64_t V) { Shards_[shardIndex()].H.record(V); }

  /// Records a duration in seconds (quantized to whole nanoseconds;
  /// negative values clamp to 0).
  void recordSeconds(double S) {
    record(S <= 0 ? 0 : static_cast<uint64_t>(S * 1e9));
  }

  HistogramSnapshot snapshot() const;

private:
  static constexpr unsigned NumShards = 8;
  struct alignas(64) PaddedShard {
    Histogram H;
  };
  static unsigned shardIndex();
  std::array<PaddedShard, NumShards> Shards_;
};

/// Named registry of metrics with stable references and a Prometheus
/// text-exposition renderer. Registration and rendering take a mutex; the
/// returned references are lock-free to update and remain valid for the
/// registry's lifetime. Re-registering a name returns the existing metric
/// (the kind must match).
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(std::string_view Name, std::string_view Help = "");
  Gauge &gauge(std::string_view Name, std::string_view Help = "");
  ShardedHistogram &histogram(std::string_view Name,
                              std::string_view Help = "");

  /// Registers a gauge whose value is computed at render time (queue depth,
  /// cache occupancy, ...). Re-registering a name replaces the callback.
  void gaugeFn(std::string_view Name, std::string_view Help,
               std::function<double()> Fn);

  /// Renders every metric in Prometheus text exposition format (in
  /// registration order). Histogram buckets are emitted as cumulative
  /// `_bucket{le="..."}` lines in seconds up to the highest non-empty
  /// bucket, followed by `+Inf`, `_sum` and `_count`.
  std::string renderPrometheus() const;

private:
  struct Impl;
  Impl *M;
};

/// Appends a Prometheus sample value (shortest round-trippable decimal).
void appendPromValue(std::string &Out, double V);

/// Appends one `# TYPE` header plus a single-sample line; shared between the
/// registry renderer and callers that append computed gauges.
void appendPromGauge(std::string &Out, std::string_view Name,
                     std::string_view Help, double V);
void appendPromCounter(std::string &Out, std::string_view Name,
                       std::string_view Help, double V);

/// Appends a full histogram exposition for \p S under \p Name (which should
/// end in `_seconds`; bucket bounds and sums are rendered in seconds).
void appendPromHistogram(std::string &Out, std::string_view Name,
                         std::string_view Help, const HistogramSnapshot &S);

} // namespace telemetry
} // namespace uspec

#endif // USPEC_SUPPORT_TELEMETRY_H
