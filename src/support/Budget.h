//===- Budget.h - Monotonic step/byte/deadline budgets ----------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative resource budgets for bounded analysis. A Budget caps the
/// number of abstract "steps" (solver propagations, matcher probes,
/// interpreted instructions) and/or wall-clock time for one unit of work
/// (one corpus program during learn(), one request inside the service).
///
/// Budgets are strictly cooperative: long-running loops call consume() /
/// checkpoint() and bail out when exhausted() turns true. Exhaustion is not
/// an error — callers degrade to a sound over-approximation (⊤) or
/// quarantine the offending program; see DESIGN.md §10.
///
/// The deadline is polled only every `ClockPollInterval` consumed steps so
/// that the fast path stays a couple of integer ops; with no step limit and
/// no deadline every call collapses to an incrementing counter.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_BUDGET_H
#define USPEC_SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>

namespace uspec {

/// A monotonic step + deadline budget for one unit of work. Not thread-safe;
/// each worker owns its own Budget.
class Budget {
public:
  using Clock = std::chrono::steady_clock;

  /// Poll the clock at most once per this many consumed steps.
  static constexpr uint64_t ClockPollInterval = 1024;

  Budget() = default;

  /// Budget limited to \p Steps abstract steps (0 = unlimited).
  static Budget steps(uint64_t Steps) {
    Budget B;
    B.StepLimit = Steps;
    return B;
  }

  /// Budget limited to \p Ms milliseconds from now (0 = no deadline).
  static Budget deadline(uint64_t Ms) {
    Budget B;
    B.setDeadline(Ms);
    return B;
  }

  void setStepLimit(uint64_t Steps) { StepLimit = Steps; }

  void setDeadline(uint64_t Ms) {
    if (Ms == 0)
      return;
    HasDeadline = true;
    Deadline = Clock::now() + std::chrono::milliseconds(Ms);
  }

  void setDeadlinePoint(Clock::time_point At) {
    HasDeadline = true;
    Deadline = At;
  }

  /// Consume \p N steps. Returns true while the budget still has headroom;
  /// once it returns false it keeps returning false (monotonic).
  bool consume(uint64_t N = 1) {
    if (Exhausted)
      return false;
    Used += N;
    if (StepLimit != 0 && Used > StepLimit) {
      Exhausted = true;
      ExhaustedBy = Reason::Steps;
      return false;
    }
    if (HasDeadline && Used >= NextClockPoll) {
      NextClockPoll = Used + ClockPollInterval;
      if (Clock::now() >= Deadline) {
        Exhausted = true;
        ExhaustedBy = Reason::Deadline;
        return false;
      }
    }
    return true;
  }

  /// Cooperative cancellation point: counts as one step so the periodic
  /// deadline poll keeps firing even in loops that only checkpoint().
  bool checkpoint() { return consume(1); }

  bool exhausted() const { return Exhausted; }
  uint64_t used() const { return Used; }

  /// Human-readable exhaustion reason ("steps" / "deadline"), or "" if the
  /// budget still has headroom.
  const char *reason() const {
    if (!Exhausted)
      return "";
    return ExhaustedBy == Reason::Steps ? "steps" : "deadline";
  }

private:
  enum class Reason { Steps, Deadline };

  uint64_t StepLimit = 0;
  uint64_t Used = 0;
  uint64_t NextClockPoll = ClockPollInterval;
  bool HasDeadline = false;
  bool Exhausted = false;
  Reason ExhaustedBy = Reason::Steps;
  Clock::time_point Deadline{};
};

} // namespace uspec

#endif // USPEC_SUPPORT_BUDGET_H
