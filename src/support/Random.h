//===- Random.h - Deterministic pseudo-random number generation -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (xoshiro256** seeded via SplitMix64). All
/// randomized parts of the system (corpus generation, negative subsampling,
/// SGD shuffling, Atlas test synthesis) take an explicit Rng so that every
/// experiment is reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_RANDOM_H
#define USPEC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace uspec {

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed5eed5eedULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Multiply-shift rejection-free bounding (slight bias is irrelevant for
    // Bound values far below 2^64).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with success probability \p P.
  bool chance(double P) { return real() < P; }

  /// Uniformly picks an element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[below(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[below(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace uspec

#endif // USPEC_SUPPORT_RANDOM_H
