//===- EventLog.cpp - Structured fleet event log --------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "support/JsonEscape.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <mutex>
#include <sys/stat.h>
#include <unistd.h>

using namespace uspec;

namespace {

constexpr uint64_t DefaultMaxBytes = 8u << 20; // 8 MiB per live file

/// The one armed log. The mutex serializes seq assignment, the size check,
/// and rotation; the append itself is a single O_APPEND write so even an
/// *external* process sharing the file cannot interleave bytes mid-line.
struct LogState {
  std::mutex Mutex;
  int Fd = -1;
  std::string Path;
  uint64_t Seq = 0;
  uint64_t Bytes = 0;
  uint64_t MaxBytes = DefaultMaxBytes;
};

LogState &state() {
  static LogState S;
  return S;
}

/// Writes the whole buffer with one write(2) call, retrying only on EINTR.
/// A short write (disk full) abandons the rest of the line; the next line
/// starts with '\n'-terminated framing again, so readers resync by skipping
/// the torn line (it fails to parse as JSON).
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Rotates PATH to PATH.1 (clobbering any previous .1) and reopens a fresh
/// live file. Called with the state mutex held. On any failure the current
/// fd keeps appending — losing rotation is better than losing events.
void rotateLocked(LogState &S) {
  std::string Rotated = S.Path + ".1";
  if (::rename(S.Path.c_str(), Rotated.c_str()) != 0)
    return;
  int NewFd = ::open(S.Path.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    // Reopen failed: keep writing to the (now renamed) old file.
    return;
  }
  ::close(S.Fd);
  S.Fd = NewFd;
  S.Bytes = 0;
}

uint64_t wallMs() {
  struct timespec Ts;
  ::clock_gettime(CLOCK_REALTIME, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000u +
         static_cast<uint64_t>(Ts.tv_nsec) / 1000000u;
}

} // namespace

std::atomic<bool> events::detail::EventsArmed{false};

void events::detail::emitImpl(
    const char *Type, std::vector<std::pair<const char *, std::string>> Fields) {
  std::string Line;
  Line.reserve(96 + Fields.size() * 32);

  LogState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Fd < 0)
    return; // disarmed between the enabled() gate and here

  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "{\"v\":%u,\"seq\":%" PRIu64 ",\"ts_ms\":%" PRIu64
                ",\"pid\":%ld,\"type\":",
                SchemaVersion, S.Seq, wallMs(),
                static_cast<long>(::getpid()));
  Line += Buf;
  appendJsonQuoted(Line, Type);
  for (const auto &KV : Fields) {
    Line += ',';
    appendJsonQuoted(Line, KV.first);
    Line += ':';
    appendJsonQuoted(Line, KV.second);
  }
  Line += "}\n";

  if (S.Bytes + Line.size() > S.MaxBytes && S.Bytes > 0)
    rotateLocked(S);
  if (writeAll(S.Fd, Line.data(), Line.size())) {
    ++S.Seq;
    S.Bytes += Line.size();
  }
}

bool events::startToFile(const std::string &Path, uint64_t MaxBytes,
                         std::string *Err) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Err)
      *Err = "cannot open event log '" + Path + "': " + std::strerror(errno);
    return false;
  }
  struct stat St;
  uint64_t Existing =
      (::fstat(Fd, &St) == 0) ? static_cast<uint64_t>(St.st_size) : 0;

  LogState &S = state();
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (S.Fd >= 0)
      ::close(S.Fd);
    S.Fd = Fd;
    S.Path = Path;
    S.Seq = 0;
    S.Bytes = Existing;
    if (MaxBytes)
      S.MaxBytes = MaxBytes;
  }
  detail::EventsArmed.store(true, std::memory_order_relaxed);
  return true;
}

void events::finish() {
  detail::EventsArmed.store(false, std::memory_order_relaxed);
  LogState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Fd >= 0) {
    ::close(S.Fd);
    S.Fd = -1;
  }
  S.Path.clear();
}

void events::loadFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Env = std::getenv("USPEC_EVENTS");
    if (!Env || !*Env)
      return;
    uint64_t MaxBytes = 0;
    if (const char *Cap = std::getenv("USPEC_EVENTS_MAX_BYTES"))
      if (*Cap)
        MaxBytes = std::strtoull(Cap, nullptr, 10);
    std::string Err;
    if (!startToFile(Env, MaxBytes, &Err))
      std::fprintf(stderr, "uspec: warning: USPEC_EVENTS: %s\n", Err.c_str());
  });
}
