//===- Arena.h - Bump/slab allocator for analysis scratch ------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer slab arena for per-program analysis scratch (points-to
/// sets, solver adjacency, field maps). The learn() hot path allocates
/// millions of tiny, short-lived arrays whose lifetimes all end together
/// when a program's analysis finishes; routing them through the general
/// allocator serializes the parallel pipeline on the malloc locks and pays
/// a destructor walk per program. An Arena turns each allocation into a
/// pointer bump and the whole teardown into a handful of slab frees (or a
/// cursor rewind with reset()).
///
/// Deliberately minimal:
///  - allocations never run constructors/destructors — callers place
///    trivially-destructible data only (u32/u64 spans, PODs);
///  - individual frees do not exist; memory is reclaimed by reset() or the
///    arena's destructor;
///  - not thread-safe; the pipeline gives each worker its own arena.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_ARENA_H
#define USPEC_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace uspec {

class Arena {
public:
  /// \p FirstSlabBytes sizes the initial slab; later slabs double up to
  /// MaxSlabBytes so a large program costs O(log n) mmap-sized mallocs.
  explicit Arena(size_t FirstSlabBytes = 1 << 16)
      : NextSlabBytes(FirstSlabBytes ? FirstSlabBytes : 1 << 16) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Raw aligned allocation. Never returns null (throws std::bad_alloc via
  /// operator new on exhaustion, like the STL containers it replaces).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = (Cursor + (Align - 1)) & ~(uintptr_t)(Align - 1);
    if (P + Bytes > SlabEnd) {
      grow(Bytes + Align);
      P = (Cursor + (Align - 1)) & ~(uintptr_t)(Align - 1);
    }
    Cursor = P + Bytes;
    return reinterpret_cast<void *>(P);
  }

  /// Uninitialized array of \p N trivially-destructible Ts.
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Zero-initialized array of \p N Ts.
  template <typename T> T *allocArrayZeroed(size_t N) {
    T *P = allocArray<T>(N);
    std::memset(static_cast<void *>(P), 0, N * sizeof(T));
    return P;
  }

  /// Rewinds to empty, keeping every slab for reuse. One reset replaces the
  /// millions of destructor calls a per-program STL teardown would run.
  void reset() {
    CurSlab = 0;
    if (!Slabs.empty()) {
      Cursor = reinterpret_cast<uintptr_t>(Slabs[0].Mem.get());
      SlabEnd = Cursor + Slabs[0].Bytes;
    } else {
      Cursor = SlabEnd = 0;
    }
  }

  /// Bytes handed out since construction/reset (diagnostics only).
  size_t bytesUsed() const {
    size_t Used = 0;
    for (size_t I = 0; I < CurSlab && I < Slabs.size(); ++I)
      Used += Slabs[I].Bytes;
    if (CurSlab < Slabs.size())
      Used += Cursor - reinterpret_cast<uintptr_t>(Slabs[CurSlab].Mem.get());
    return Used;
  }

  /// Total bytes reserved across all slabs.
  size_t bytesReserved() const {
    size_t Total = 0;
    for (const Slab &S : Slabs)
      Total += S.Bytes;
    return Total;
  }

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Bytes = 0;
  };

  static constexpr size_t MaxSlabBytes = size_t(1) << 22; // 4 MiB

  void grow(size_t AtLeast) {
    // After reset() earlier slabs may still be usable; advance first.
    while (CurSlab + 1 < Slabs.size()) {
      ++CurSlab;
      Cursor = reinterpret_cast<uintptr_t>(Slabs[CurSlab].Mem.get());
      SlabEnd = Cursor + Slabs[CurSlab].Bytes;
      if (Cursor + AtLeast <= SlabEnd)
        return;
    }
    size_t Bytes = NextSlabBytes;
    while (Bytes < AtLeast)
      Bytes *= 2;
    if (NextSlabBytes < MaxSlabBytes)
      NextSlabBytes *= 2;
    Slabs.push_back(Slab{std::make_unique<char[]>(Bytes), Bytes});
    CurSlab = Slabs.size() - 1;
    Cursor = reinterpret_cast<uintptr_t>(Slabs.back().Mem.get());
    SlabEnd = Cursor + Bytes;
  }

  std::vector<Slab> Slabs;
  size_t CurSlab = 0;
  uintptr_t Cursor = 0;
  uintptr_t SlabEnd = 0;
  size_t NextSlabBytes;
};

} // namespace uspec

#endif // USPEC_SUPPORT_ARENA_H
