//===- Table.cpp - Plain-text table rendering -----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace uspec;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

std::string TextTable::formatReal(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string TextTable::render() const {
  // Compute the width of every column over header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  if (TotalWidth > 1)
    TotalWidth -= 2;

  std::ostringstream Out;
  auto EmitCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out << Cells[I];
      if (I + 1 < Cells.size())
        Out << std::string(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Out << '\n';
  };

  if (!Header.empty()) {
    EmitCells(Header);
    Out << std::string(TotalWidth, '-') << '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      Out << std::string(TotalWidth, '-') << '\n';
    else
      EmitCells(R.Cells);
  }
  return Out.str();
}
