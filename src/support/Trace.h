//===- Trace.h - Chrome-trace-event span tracer -----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide span tracer emitting Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing). Spans are RAII TraceSpan objects recorded
/// into per-thread buffers; stop() (or finish(), for file-backed sessions)
/// merges the buffers into one `{"traceEvents":[...]}` document of complete
/// ("ph":"X") events with microsecond timestamps and per-thread tids.
///
/// Overhead discipline (same as FaultInject): when no session is armed,
/// constructing a TraceSpan costs exactly one relaxed atomic load — no clock
/// read, no allocation, no branch beyond the gate. Tracing only observes;
/// it must never perturb pipeline determinism (pinned by TelemetryDeterminism
/// tests: learn() artifacts are bit-identical with tracing on/off at any
/// thread count).
///
/// Span names must be string literals (or otherwise outlive the session);
/// dynamic data goes in args, which call sites guard with active() so the
/// strings are never built when tracing is off.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_TRACE_H
#define USPEC_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace uspec {
namespace trace {

namespace detail {
extern std::atomic<bool> TraceArmed;
void beginSpan(const char *Name, uint64_t StartNs, uint64_t EndNs,
               std::vector<std::pair<const char *, std::string>> Args);
uint64_t nowNs();
} // namespace detail

/// True while a trace session is armed. The one-relaxed-load fast path.
inline bool enabled() {
  return detail::TraceArmed.load(std::memory_order_relaxed);
}

/// Arms an in-memory session (events buffered until stop()).
void start();

/// Arms a session that finish() will write to \p Path. Returns false (with
/// *Err set) if the path is not writable; the session is not armed then.
bool startToFile(const std::string &Path, std::string *Err = nullptr);

/// Disarms the session and returns the serialized trace JSON (an empty
/// traceEvents array if no session was armed). Buffers are cleared. The
/// document carries a `uspecBaseNs` top-level key — the session epoch as
/// absolute steady-clock nanoseconds — which `uspec obs stitch` uses to
/// align shards from different processes onto one timeline.
std::string stop();

/// Disarms and, when the session was started with startToFile(), writes the
/// JSON there. No-op (returns true) when no file-backed session is armed;
/// returns false with *Err set on write failure.
bool finish(std::string *Err = nullptr);

/// Arms a file-backed session from USPEC_TRACE=out.json, once per process.
void loadFromEnv();

/// Records a complete event with explicit endpoints (for intervals measured
/// across threads, e.g. service queue wait). Call only when enabled().
void completeEvent(const char *Name,
                   std::chrono::steady_clock::time_point Begin,
                   std::chrono::steady_clock::time_point End,
                   std::vector<std::pair<const char *, std::string>> Args = {});

} // namespace trace

/// RAII span: records [construction, destruction) on the current thread as
/// one complete trace event. Inert (no clock read, no allocation) when no
/// session is armed.
class TraceSpan {
public:
  explicit TraceSpan(const char *SpanName) {
    if (trace::enabled()) {
      Name = SpanName;
      StartNs = trace::detail::nowNs();
    }
  }
  ~TraceSpan() {
    if (Name)
      trace::detail::beginSpan(Name, StartNs, trace::detail::nowNs(),
                               std::move(Args));
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// True when this span is actually recording; guard arg construction with
  /// this so argument strings are never built when tracing is off.
  bool active() const { return Name != nullptr; }

  /// Attaches a key/value argument (no-op when inactive). \p Key must be a
  /// string literal.
  void arg(const char *Key, std::string Value) {
    if (Name)
      Args.emplace_back(Key, std::move(Value));
  }

private:
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  std::vector<std::pair<const char *, std::string>> Args;
};

} // namespace uspec

#endif // USPEC_SUPPORT_TRACE_H
