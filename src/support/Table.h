//===- Table.h - Plain-text table rendering for bench output ---*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal aligned ASCII table used by the benchmark harnesses to print the
/// same rows the paper's tables report.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_TABLE_H
#define USPEC_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace uspec {

/// Accumulates rows of cells and renders them with per-column alignment.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row; rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table; every column is padded to its widest cell.
  std::string render() const;

  /// Convenience: formats a double with \p Digits fraction digits.
  static std::string formatReal(double Value, int Digits = 3);

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace uspec

#endif // USPEC_SUPPORT_TABLE_H
