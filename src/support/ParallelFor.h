//===- ParallelFor.h - Deterministic parallel loops ------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-pool-free parallel loops for the pipeline phases. Two shapes:
///
///   parallelFor(N, Threads, Body)    — Body(I) for I in [0, N), work items
///                                      handed out via an atomic counter;
///   shardRange(N, Shard, NumShards)  — the contiguous [begin, end) range of
///                                      shard Shard, for phases that keep
///                                      per-worker state and merge it
///                                      afterwards (candidate extraction).
///
/// Both are deterministic as long as Body(I) only touches index I's slots:
/// the schedule varies, the result does not. Exceptions thrown by workers
/// are captured (first one wins), all workers are joined, and the exception
/// is rethrown on the calling thread — a throwing Body no longer reaches
/// std::terminate via an unhandled exception on a std::thread.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_PARALLELFOR_H
#define USPEC_SUPPORT_PARALLELFOR_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace uspec {

/// Resolves a user-facing thread-count setting (0 = hardware concurrency)
/// to the number of workers actually used for \p N work items.
inline unsigned effectiveThreads(size_t N, unsigned Threads) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(1, N)));
}

/// The contiguous index range [first, second) owned by \p Shard of
/// \p NumShards over N work items. Ranges cover [0, N) without overlap and
/// differ in size by at most one.
inline std::pair<size_t, size_t> shardRange(size_t N, unsigned Shard,
                                            unsigned NumShards) {
  size_t Lo = N * Shard / NumShards;
  size_t Hi = N * (Shard + 1) / NumShards;
  return {Lo, Hi};
}

/// Runs \p Body(I) for I in [0, N) on up to \p Threads workers (0 = hardware
/// concurrency). Work items are handed out through an atomic counter; \p Body
/// must only touch index I's slots so results are schedule-independent.
/// If any Body throws, the first exception is rethrown on the caller after
/// all workers have been joined; remaining work items may be skipped.
template <typename BodyFn>
void parallelFor(size_t N, unsigned Threads, BodyFn Body) {
  Threads = effectiveThreads(N, Threads);
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorMutex;
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&] {
      try {
        for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1)) {
          if (Failed.load(std::memory_order_relaxed))
            return;
          Body(I);
        }
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
        Failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

} // namespace uspec

#endif // USPEC_SUPPORT_PARALLELFOR_H
