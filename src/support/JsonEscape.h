//===- JsonEscape.h - Shared JSON string escaping ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON string escaper every emitter in the tree uses: the service
/// protocol (service/Protocol), pipeline stats (core/PipelineStats), the
/// telemetry renderers (support/Telemetry, support/Trace) and the CLI. Bytes
/// are escaped identically everywhere, so payloads that embed each other
/// (trace args, stats JSON inside bench output) never disagree on encoding.
/// Non-ASCII bytes pass through untouched (payloads are treated as UTF-8);
/// control bytes below 0x20 without a short escape become \u00XX — computed
/// from the byte reinterpreted as unsigned, never from a (possibly
/// sign-extended) plain char.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_JSONESCAPE_H
#define USPEC_SUPPORT_JSONESCAPE_H

#include <cstdio>
#include <string>
#include <string_view>

namespace uspec {

/// Appends \p S to \p Out with JSON string escaping, without surrounding
/// quotes.
inline void appendJsonEscaped(std::string &Out, std::string_view S) {
  for (unsigned char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", static_cast<unsigned>(C));
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
}

/// Appends \p S as a quoted, escaped JSON string literal.
inline void appendJsonQuoted(std::string &Out, std::string_view S) {
  Out.push_back('"');
  appendJsonEscaped(Out, S);
  Out.push_back('"');
}

} // namespace uspec

#endif // USPEC_SUPPORT_JSONESCAPE_H
