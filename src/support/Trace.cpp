//===- Trace.cpp - Chrome-trace-event span tracer -------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/JsonEscape.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <unistd.h>

using namespace uspec;

namespace {

struct TraceEvent {
  const char *Name;
  uint32_t Tid;
  uint64_t StartNs; // absolute steady_clock nanoseconds
  uint64_t EndNs;
  std::vector<std::pair<const char *, std::string>> Args;
};

/// Per-thread event buffer. The mutex serializes the owning thread's appends
/// against stop() draining from another thread; it is uncontended on the
/// record path except during the stop() instant.
struct ThreadBuf {
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
  uint64_t Generation = 0;
  uint32_t Tid = 0;
};

struct Session {
  std::mutex Mutex; // guards everything below
  std::vector<ThreadBuf *> Live;
  std::vector<TraceEvent> Retired; // from exited threads
  uint64_t Generation = 0;         // bumped by each start()
  uint64_t BaseNs = 0;             // session epoch
  uint32_t NextTid = 1;
  std::string OutPath; // empty for in-memory sessions
};

Session &session() {
  static Session S;
  return S;
}

/// Registers the calling thread's buffer on first use and unregisters it
/// (moving any events of the current generation to Retired) at thread exit.
struct ThreadBufOwner {
  ThreadBuf Buf;
  ThreadBufOwner() {
    Session &S = session();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Live.push_back(&Buf);
  }
  ~ThreadBufOwner() {
    Session &S = session();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    {
      std::lock_guard<std::mutex> BufLock(Buf.Mutex);
      if (Buf.Generation == S.Generation)
        for (TraceEvent &E : Buf.Events)
          S.Retired.push_back(std::move(E));
      Buf.Events.clear();
    }
    S.Live.erase(std::remove(S.Live.begin(), S.Live.end(), &Buf),
                 S.Live.end());
  }
};

ThreadBuf &threadBuf() {
  thread_local ThreadBufOwner Owner;
  return Owner.Buf;
}

void appendEvent(TraceEvent E) {
  Session &S = session();
  ThreadBuf &Buf = threadBuf();
  // Lock order is Session then ThreadBuf everywhere (drain() and the
  // ThreadBufOwner destructor take both). Buf.Generation/Tid are written
  // only by the owning thread, so reading them here without Buf.Mutex does
  // not race.
  uint64_t Gen;
  uint32_t Tid = Buf.Tid;
  bool NeedReset = false;
  {
    std::lock_guard<std::mutex> SLock(S.Mutex);
    Gen = S.Generation;
    if (Buf.Generation != Gen) {
      // First event this thread records in the current session: clear any
      // leftovers from a previous session and take a compact tid.
      NeedReset = true;
      Tid = S.NextTid++;
    }
  }
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  if (NeedReset) {
    Buf.Events.clear();
    Buf.Generation = Gen;
    Buf.Tid = Tid;
  }
  E.Tid = Tid;
  Buf.Events.push_back(std::move(E));
}

void serialize(std::string &Out, std::vector<TraceEvent> &Events,
               uint64_t BaseNs) {
  // Parents first: by start time, then longer spans before shorter ones so
  // enclosing spans precede their children in the output.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     if (A.EndNs != B.EndNs)
                       return A.EndNs > B.EndNs;
                     return A.Tid < B.Tid;
                   });
  // uspecBaseNs is the session epoch as absolute steady-clock nanoseconds.
  // Chrome/Perfetto ignore unknown top-level keys; `uspec obs stitch` reads
  // it to shift each process's session-relative timestamps onto the shared
  // machine-wide steady timeline, aligning shards from different processes.
  Out += "{\"uspecBaseNs\":";
  Out += std::to_string(BaseNs);
  Out += ",\"traceEvents\":[";
  char Buf[128];
  const long Pid = static_cast<long>(::getpid());
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":";
    appendJsonQuoted(Out, E.Name);
    uint64_t Start = E.StartNs > BaseNs ? E.StartNs - BaseNs : 0;
    uint64_t End = E.EndNs > BaseNs ? E.EndNs - BaseNs : 0;
    if (End < Start)
      End = Start;
    std::snprintf(Buf, sizeof(Buf),
                  ",\"cat\":\"uspec\",\"ph\":\"X\",\"pid\":%ld,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  Pid, E.Tid, static_cast<double>(Start) / 1e3,
                  static_cast<double>(End - Start) / 1e3);
    Out += Buf;
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I < E.Args.size(); ++I) {
        if (I)
          Out += ',';
        appendJsonQuoted(Out, E.Args[I].first);
        Out += ':';
        appendJsonQuoted(Out, E.Args[I].second);
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "]}";
}

/// Disarms and drains every buffer into one event list. Returns the session
/// epoch through \p BaseNs and the armed output path through \p OutPath.
std::vector<TraceEvent> drain(uint64_t &BaseNs, std::string &OutPath) {
  trace::detail::TraceArmed.store(false, std::memory_order_relaxed);
  Session &S = session();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<TraceEvent> Events = std::move(S.Retired);
  S.Retired.clear();
  for (ThreadBuf *Buf : S.Live) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    if (Buf->Generation == S.Generation)
      for (TraceEvent &E : Buf->Events)
        Events.push_back(std::move(E));
    Buf->Events.clear();
  }
  BaseNs = S.BaseNs;
  OutPath = std::move(S.OutPath);
  S.OutPath.clear();
  return Events;
}

void armSession(std::string OutPath) {
  Session &S = session();
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    ++S.Generation;
    S.Retired.clear();
    S.BaseNs = trace::detail::nowNs();
    S.NextTid = 1;
    S.OutPath = std::move(OutPath);
  }
  trace::detail::TraceArmed.store(true, std::memory_order_relaxed);
}

} // namespace

std::atomic<bool> trace::detail::TraceArmed{false};

uint64_t trace::detail::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void trace::detail::beginSpan(
    const char *Name, uint64_t StartNs, uint64_t EndNs,
    std::vector<std::pair<const char *, std::string>> Args) {
  // A span whose session was stopped mid-flight is dropped rather than
  // leaked into the next session's buffers.
  if (!enabled())
    return;
  appendEvent(TraceEvent{Name, 0, StartNs, EndNs, std::move(Args)});
}

void trace::start() { armSession(""); }

bool trace::startToFile(const std::string &Path, std::string *Err) {
  // Probe writability up front so `--trace /bad/path` fails at startup, not
  // after a full pipeline run.
  {
    std::ofstream Probe(Path, std::ios::binary | std::ios::trunc);
    if (!Probe) {
      if (Err)
        *Err = "cannot open trace file '" + Path + "' for writing";
      return false;
    }
  }
  armSession(Path);
  return true;
}

std::string trace::stop() {
  uint64_t BaseNs = 0;
  std::string OutPath;
  std::vector<TraceEvent> Events = drain(BaseNs, OutPath);
  std::string Out;
  Out.reserve(64 + Events.size() * 96);
  serialize(Out, Events, BaseNs);
  return Out;
}

bool trace::finish(std::string *Err) {
  if (!enabled())
    return true;
  uint64_t BaseNs = 0;
  std::string OutPath;
  std::vector<TraceEvent> Events = drain(BaseNs, OutPath);
  if (OutPath.empty())
    return true;
  std::string Out;
  Out.reserve(64 + Events.size() * 96);
  serialize(Out, Events, BaseNs);
  std::ofstream File(OutPath, std::ios::binary | std::ios::trunc);
  File.write(Out.data(), static_cast<std::streamsize>(Out.size()));
  File.flush();
  if (!File) {
    if (Err)
      *Err = "cannot write trace file '" + OutPath + "'";
    return false;
  }
  return true;
}

void trace::loadFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    if (const char *Env = std::getenv("USPEC_TRACE"))
      if (*Env) {
        std::string Err;
        if (!startToFile(Env, &Err))
          std::fprintf(stderr, "uspec: warning: USPEC_TRACE: %s\n",
                       Err.c_str());
      }
  });
}

void trace::completeEvent(
    const char *Name, std::chrono::steady_clock::time_point Begin,
    std::chrono::steady_clock::time_point End,
    std::vector<std::pair<const char *, std::string>> Args) {
  auto ToNs = [](std::chrono::steady_clock::time_point T) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            T.time_since_epoch())
            .count());
  };
  detail::beginSpan(Name, ToNs(Begin), ToNs(End), std::move(Args));
}
