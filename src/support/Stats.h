//===- Stats.h - Summary statistics used by scoring and evaluation -*- C++-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers: the score aggregations of §5.2 (max, percentile,
/// mean of the k highest values) and precision/recall bookkeeping used when
/// evaluating selected specifications against ground truth (§7.2).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_STATS_H
#define USPEC_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace uspec {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// The \p Q quantile (0 <= Q <= 1) using nearest-rank on a sorted copy;
/// 0 for an empty input.
double percentile(const std::vector<double> &Values, double Q);

/// Mean of the K largest values (all values if fewer than K); this is the
/// paper's preferred specification score with K = 10 (§5.2).
double topKMean(const std::vector<double> &Values, size_t K);

/// Largest value; 0 for an empty input.
double maxValue(const std::vector<double> &Values);

/// Running precision/recall counter. "Relevant" items are those the ground
/// truth labels valid; "selected" are those the system retained.
struct PrecisionRecall {
  size_t TruePositives = 0;
  size_t FalsePositives = 0;
  size_t FalseNegatives = 0;

  /// Records one item with ground-truth label \p IsValid and system decision
  /// \p IsSelected.
  void record(bool IsValid, bool IsSelected) {
    if (IsSelected && IsValid)
      ++TruePositives;
    else if (IsSelected && !IsValid)
      ++FalsePositives;
    else if (!IsSelected && IsValid)
      ++FalseNegatives;
  }

  /// Fraction of selected items that are valid; 1 when nothing was selected
  /// (the paper's convention keeps precision high for tiny selections).
  double precision() const {
    size_t Selected = TruePositives + FalsePositives;
    return Selected == 0 ? 1.0
                         : static_cast<double>(TruePositives) / Selected;
  }

  /// Fraction of valid items that were selected; 1 when nothing is valid.
  double recall() const {
    size_t Valid = TruePositives + FalseNegatives;
    return Valid == 0 ? 1.0 : static_cast<double>(TruePositives) / Valid;
  }

  /// Harmonic mean of precision and recall.
  double f1() const {
    double P = precision(), R = recall();
    return (P + R) == 0 ? 0 : 2 * P * R / (P + R);
  }
};

} // namespace uspec

#endif // USPEC_SUPPORT_STATS_H
