//===- StringInterner.h - Symbol table for interned strings ----*- C++ -*-===//
//
// Part of the USpec reproduction of "Unsupervised Learning of API Aliasing
// Specifications" (PLDI 2019). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Every name that flows through the pipeline (method
/// names, class names, literal values) is interned once and referred to by a
/// small integer Symbol, which makes event/feature hashing and equality
/// comparisons cheap and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_STRINGINTERNER_H
#define USPEC_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace uspec {

/// A handle to an interned string. Symbols are only meaningful together with
/// the StringInterner that produced them. Symbol 0 is reserved for the empty
/// string so that a default-constructed Symbol is valid.
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool isEmpty() const { return Id == 0; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id = 0;
};

/// Deduplicating string table. Mutation (intern of a new string) requires
/// external synchronization, but concurrent const access — str(), size(),
/// intern() of an already-present string — is safe while no writer runs.
/// The parallel pipeline phases rely on this read-only contract: all names
/// are interned during parsing/lowering, before learn() fans out.
class StringInterner {
public:
  StringInterner() { Storage.emplace_back(); /* Symbol 0 = "" */ }

  // Copying would leave the copy's Index keys viewing the original's
  // Storage. Moving is fine: deque/unordered_map moves steal the chunks, so
  // element addresses (and thus views and str() references) survive.
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;
  StringInterner(StringInterner &&) = default;
  StringInterner &operator=(StringInterner &&) = default;

  /// Interns \p Str and returns its Symbol; repeated calls with equal
  /// contents return the same Symbol. Lookup is heterogeneous — a probe for
  /// an already-interned string allocates nothing.
  Symbol intern(std::string_view Str) {
    if (Str.empty())
      return Symbol();
    auto It = Index.find(Str);
    if (It != Index.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Storage.size());
    // Deque storage never relocates existing elements, so both the Index
    // keys and every reference handed out by str() stay valid across
    // arbitrary later intern() calls.
    Storage.emplace_back(Str);
    Index.emplace(std::string_view(Storage.back()), Id);
    return Symbol(Id);
  }

  /// Const probe: the Symbol of \p Str if it is already interned, nullopt
  /// otherwise. Never mutates, so it is safe concurrently with other
  /// readers — this is how const consumers (the query service's client
  /// verbs) resolve externally supplied names against a frozen interner.
  std::optional<Symbol> lookup(std::string_view Str) const {
    if (Str.empty())
      return Symbol();
    auto It = Index.find(Str);
    if (It == Index.end())
      return std::nullopt;
    return Symbol(It->second);
  }

  /// Returns the string for \p Sym. The reference is stable for the lifetime
  /// of the interner — storage is chunked (std::deque), so growth never
  /// invalidates previously returned references.
  const std::string &str(Symbol Sym) const {
    assert(Sym.id() < Storage.size() && "symbol from a different interner");
    return Storage[Sym.id()];
  }

  /// Number of interned strings, including the reserved empty string.
  size_t size() const { return Storage.size(); }

private:
  std::deque<std::string> Storage;
  /// Keys view into Storage (stable addresses); probes never allocate.
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace uspec

namespace std {
template <> struct hash<uspec::Symbol> {
  size_t operator()(uspec::Symbol Sym) const noexcept {
    return hash<uint32_t>()(Sym.id());
  }
};
} // namespace std

#endif // USPEC_SUPPORT_STRINGINTERNER_H
