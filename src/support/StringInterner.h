//===- StringInterner.h - Symbol table for interned strings ----*- C++ -*-===//
//
// Part of the USpec reproduction of "Unsupervised Learning of API Aliasing
// Specifications" (PLDI 2019). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Every name that flows through the pipeline (method
/// names, class names, literal values) is interned once and referred to by a
/// small integer Symbol, which makes event/feature hashing and equality
/// comparisons cheap and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_STRINGINTERNER_H
#define USPEC_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uspec {

/// A handle to an interned string. Symbols are only meaningful together with
/// the StringInterner that produced them. Symbol 0 is reserved for the empty
/// string so that a default-constructed Symbol is valid.
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool isEmpty() const { return Id == 0; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id = 0;
};

/// Deduplicating string table. Thread-compatible (external synchronization
/// required for concurrent use); the pipeline interns strings on one thread.
class StringInterner {
public:
  StringInterner() { Storage.emplace_back(); /* Symbol 0 = "" */ }

  /// Interns \p Str and returns its Symbol; repeated calls with equal
  /// contents return the same Symbol.
  Symbol intern(std::string_view Str) {
    if (Str.empty())
      return Symbol();
    auto It = Index.find(std::string(Str));
    if (It != Index.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Storage.size());
    Storage.emplace_back(Str);
    Index.emplace(Storage.back(), Id);
    return Symbol(Id);
  }

  /// Returns the string for \p Sym. The reference is stable for the lifetime
  /// of the interner.
  const std::string &str(Symbol Sym) const {
    assert(Sym.id() < Storage.size() && "symbol from a different interner");
    return Storage[Sym.id()];
  }

  /// Number of interned strings, including the reserved empty string.
  size_t size() const { return Storage.size(); }

private:
  std::vector<std::string> Storage;
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace uspec

namespace std {
template <> struct hash<uspec::Symbol> {
  size_t operator()(uspec::Symbol Sym) const noexcept {
    return hash<uint32_t>()(Sym.id());
  }
};
} // namespace std

#endif // USPEC_SUPPORT_STRINGINTERNER_H
