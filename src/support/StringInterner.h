//===- StringInterner.h - Symbol table for interned strings ----*- C++ -*-===//
//
// Part of the USpec reproduction of "Unsupervised Learning of API Aliasing
// Specifications" (PLDI 2019). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Every name that flows through the pipeline (method
/// names, class names, literal values) is interned once and referred to by a
/// small integer Symbol, which makes event/feature hashing and equality
/// comparisons cheap and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SUPPORT_STRINGINTERNER_H
#define USPEC_SUPPORT_STRINGINTERNER_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {

/// A handle to an interned string. Symbols are only meaningful together with
/// the StringInterner that produced them. Symbol 0 is reserved for the empty
/// string so that a default-constructed Symbol is valid.
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool isEmpty() const { return Id == 0; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id = 0;
};

/// Deduplicating string table. Mutation (intern of a new string) requires
/// external synchronization, but concurrent const access — str(), size(),
/// intern() of an already-present string — is safe while no writer runs.
/// The parallel pipeline phases rely on this read-only contract: all names
/// are interned during parsing/lowering, before learn() fans out.
class StringInterner {
public:
  StringInterner() { Storage.emplace_back(); /* Symbol 0 = "" */ }

  // Copying is still disabled to keep move-only semantics uniform across
  // call sites. Moving steals the deque chunks and the index vector, so
  // element addresses (and thus str() references) survive.
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;
  StringInterner(StringInterner &&) = default;
  StringInterner &operator=(StringInterner &&) = default;

  /// Interns \p Str and returns its Symbol; repeated calls with equal
  /// contents return the same Symbol. Lookup is heterogeneous — a probe for
  /// an already-interned string allocates nothing.
  Symbol intern(std::string_view Str) {
    if (Str.empty())
      return Symbol();
    if (Index.empty() || IndexCount * 10 >= Index.size() * 7)
      rehash(Index.empty() ? 64 : Index.size() * 2);
    uint64_t Hash = hashBytesWide(Str);
    size_t SlotIdx = probe(Str, Hash);
    if (Index[SlotIdx].Id != 0)
      return Symbol(Index[SlotIdx].Id);
    uint32_t Id = static_cast<uint32_t>(Storage.size());
    // Deque storage never relocates existing elements, so every reference
    // handed out by str() stays valid across arbitrary later intern() calls.
    Storage.emplace_back(Str);
    Index[SlotIdx] = IndexSlot{Hash, Id};
    ++IndexCount;
    return Symbol(Id);
  }

  /// Const probe: the Symbol of \p Str if it is already interned, nullopt
  /// otherwise. Never mutates, so it is safe concurrently with other
  /// readers — this is how const consumers (the query service's client
  /// verbs) resolve externally supplied names against a frozen interner.
  std::optional<Symbol> lookup(std::string_view Str) const {
    if (Str.empty())
      return Symbol();
    if (Index.empty())
      return std::nullopt;
    size_t SlotIdx = probe(Str, hashBytesWide(Str));
    if (Index[SlotIdx].Id == 0)
      return std::nullopt;
    return Symbol(Index[SlotIdx].Id);
  }

  /// Returns the string for \p Sym. The reference is stable for the lifetime
  /// of the interner — storage is chunked (std::deque), so growth never
  /// invalidates previously returned references.
  const std::string &str(Symbol Sym) const {
    assert(Sym.id() < Storage.size() && "symbol from a different interner");
    return Storage[Sym.id()];
  }

  /// Number of interned strings, including the reserved empty string.
  size_t size() const { return Storage.size(); }

private:
  /// One open-addressed slot: cached wide hash (so rehash and most probe
  /// misses never touch Storage) plus the symbol id. Id 0 is the vacant
  /// marker — the empty string short-circuits before reaching the table, so
  /// Symbol 0 never occupies a slot.
  struct IndexSlot {
    uint64_t Hash = 0;
    uint32_t Id = 0;
  };

  /// Returns the slot holding \p Str, or the first vacant slot on its probe
  /// sequence. Requires a non-empty table. Linear probing over a
  /// power-of-two table; string comparison only runs on a full 64-bit hash
  /// match, so collisions are overwhelmingly resolved on the flat array.
  size_t probe(std::string_view Str, uint64_t Hash) const {
    size_t Mask = Index.size() - 1;
    for (size_t I = Hash & Mask;; I = (I + 1) & Mask) {
      const IndexSlot &S = Index[I];
      if (S.Id == 0 || (S.Hash == Hash && Storage[S.Id] == Str))
        return I;
    }
  }

  void rehash(size_t NewCap) {
    std::vector<IndexSlot> Old;
    Old.swap(Index);
    Index.resize(NewCap);
    size_t Mask = NewCap - 1;
    for (const IndexSlot &S : Old) {
      if (S.Id == 0)
        continue;
      size_t I = S.Hash & Mask;
      while (Index[I].Id != 0)
        I = (I + 1) & Mask;
      Index[I] = S;
    }
  }

  std::deque<std::string> Storage;
  /// Flat open-addressed (hash, id) table; probes touch one contiguous
  /// array instead of chasing unordered_map buckets.
  std::vector<IndexSlot> Index;
  size_t IndexCount = 0;
};

} // namespace uspec

namespace std {
template <> struct hash<uspec::Symbol> {
  size_t operator()(uspec::Symbol Sym) const noexcept {
    return hash<uint32_t>()(Sym.id());
  }
};
} // namespace std

#endif // USPEC_SUPPORT_STRINGINTERNER_H
