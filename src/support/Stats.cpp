//===- Stats.cpp - Summary statistics --------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>

namespace uspec {

double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double percentile(const std::vector<double> &Values, double Q) {
  assert(Q >= 0 && Q <= 1 && "quantile out of range");
  if (Values.empty())
    return 0;
  std::vector<double> Sorted(Values);
  std::sort(Sorted.begin(), Sorted.end());
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

double topKMean(const std::vector<double> &Values, size_t K) {
  if (Values.empty() || K == 0)
    return 0;
  std::vector<double> Sorted(Values);
  std::sort(Sorted.begin(), Sorted.end(), std::greater<double>());
  size_t N = std::min(K, Sorted.size());
  double Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += Sorted[I];
  return Sum / static_cast<double>(N);
}

double maxValue(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  return *std::max_element(Values.begin(), Values.end());
}

} // namespace uspec
