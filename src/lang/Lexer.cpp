//===- Lexer.cpp - MiniLang lexer ------------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace uspec;

const char *uspec::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwDef:
    return "'def'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view Source, DiagnosticSink &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peekAhead() == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text, int TokLine,
                       int TokColumn) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Text = std::move(Text);
  Tok.Line = TokLine;
  Tok.Column = TokColumn;
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(int TokLine, int TokColumn) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"class", TokenKind::KwClass}, {"def", TokenKind::KwDef},
      {"var", TokenKind::KwVar},     {"new", TokenKind::KwNew},
      {"if", TokenKind::KwIf},       {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile}, {"return", TokenKind::KwReturn},
      {"null", TokenKind::KwNull},   {"this", TokenKind::KwThis},
  };
  std::string Text;
  while (Pos < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    Text += advance();
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, std::move(Text), TokLine, TokColumn);
  return makeToken(TokenKind::Identifier, std::move(Text), TokLine, TokColumn);
}

Token Lexer::lexString(int TokLine, int TokColumn) {
  advance(); // opening quote
  std::string Text;
  while (Pos < Source.size() && peek() != '"') {
    char C = advance();
    if (C == '\\' && Pos < Source.size()) {
      char Escaped = advance();
      switch (Escaped) {
      case 'n':
        Text += '\n';
        break;
      case 't':
        Text += '\t';
        break;
      case '"':
        Text += '"';
        break;
      case '\\':
        Text += '\\';
        break;
      default:
        Text += Escaped;
        break;
      }
      continue;
    }
    if (C == '\n') {
      Diags.error(TokLine, TokColumn, "unterminated string literal");
      return makeToken(TokenKind::Error, Text, TokLine, TokColumn);
    }
    Text += C;
  }
  if (Pos >= Source.size()) {
    Diags.error(TokLine, TokColumn, "unterminated string literal");
    return makeToken(TokenKind::Error, Text, TokLine, TokColumn);
  }
  advance(); // closing quote
  return makeToken(TokenKind::StringLiteral, std::move(Text), TokLine,
                   TokColumn);
}

Token Lexer::lexNumber(int TokLine, int TokColumn) {
  std::string Text;
  while (Pos < Source.size() &&
         std::isdigit(static_cast<unsigned char>(peek())))
    Text += advance();
  return makeToken(TokenKind::IntLiteral, std::move(Text), TokLine, TokColumn);
}

Token Lexer::next() {
  skipTrivia();
  int TokLine = Line, TokColumn = Column;
  if (Pos >= Source.size())
    return makeToken(TokenKind::EndOfFile, "", TokLine, TokColumn);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(TokLine, TokColumn);
  if (C == '"')
    return lexString(TokLine, TokColumn);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(TokLine, TokColumn);

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, "{", TokLine, TokColumn);
  case '}':
    return makeToken(TokenKind::RBrace, "}", TokLine, TokColumn);
  case '(':
    return makeToken(TokenKind::LParen, "(", TokLine, TokColumn);
  case ')':
    return makeToken(TokenKind::RParen, ")", TokLine, TokColumn);
  case ',':
    return makeToken(TokenKind::Comma, ",", TokLine, TokColumn);
  case ';':
    return makeToken(TokenKind::Semicolon, ";", TokLine, TokColumn);
  case '.':
    return makeToken(TokenKind::Dot, ".", TokLine, TokColumn);
  case '<':
    return makeToken(TokenKind::Less, "<", TokLine, TokColumn);
  case '>':
    return makeToken(TokenKind::Greater, ">", TokLine, TokColumn);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, "==", TokLine, TokColumn);
    }
    return makeToken(TokenKind::Assign, "=", TokLine, TokColumn);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEqual, "!=", TokLine, TokColumn);
    }
    break;
  default:
    break;
  }
  Diags.error(TokLine, TokColumn,
              std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, std::string(1, C), TokLine, TokColumn);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      break;
  }
  return Tokens;
}
