//===- Diagnostics.h - Error reporting for the MiniLang frontend -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic sink collecting lexer/parser errors. Library code never
/// prints directly; tools render collected diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_DIAGNOSTICS_H
#define USPEC_LANG_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace uspec {

/// One reported problem with a source location.
struct Diagnostic {
  int Line = 0;
  int Column = 0;
  std::string Message;
};

/// Collects diagnostics emitted during lexing/parsing.
class DiagnosticSink {
public:
  /// Records an error at \p Line : \p Column.
  void error(int Line, int Column, std::string Message) {
    Diags.push_back({Line, Column, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: message" lines.
  std::string render() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += std::to_string(D.Line) + ":" + std::to_string(D.Column) + ": " +
             D.Message + "\n";
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace uspec

#endif // USPEC_LANG_DIAGNOSTICS_H
