//===- Printer.cpp - MiniLang pretty printer --------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Printer.h"

#include <sstream>

using namespace uspec;

namespace {

/// Escapes a string literal body for re-lexing.
std::string escapeString(const std::string &Value) {
  std::string Out;
  for (char C : Value) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      Out += C;
      break;
    }
  }
  return Out;
}

class PrinterImpl {
public:
  void printModuleNode(const Module &M) {
    for (const ClassDecl &Class : M.Classes)
      printClass(Class);
  }

  void printExprNode(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::New: {
      const auto &New = *cast<NewExpr>(&E);
      Out << "new " << New.ClassName << "(";
      printArgs(New.Args);
      Out << ")";
      return;
    }
    case Expr::Kind::StringLit:
      Out << '"' << escapeString(cast<StringLitExpr>(&E)->Value) << '"';
      return;
    case Expr::Kind::IntLit:
      Out << cast<IntLitExpr>(&E)->Value;
      return;
    case Expr::Kind::Null:
      Out << "null";
      return;
    case Expr::Kind::This:
      Out << "this";
      return;
    case Expr::Kind::VarRef:
      Out << cast<VarRefExpr>(&E)->Name;
      return;
    case Expr::Kind::FieldRead: {
      const auto &Read = *cast<FieldReadExpr>(&E);
      printExprNode(*Read.Base);
      Out << "." << Read.Field;
      return;
    }
    case Expr::Kind::Call: {
      const auto &Call = *cast<CallExpr>(&E);
      if (Call.Receiver) {
        printExprNode(*Call.Receiver);
        Out << ".";
      }
      Out << Call.Method << "(";
      printArgs(Call.Args);
      Out << ")";
      return;
    }
    }
  }

  void printStmtNode(const Stmt &S, int Indent) {
    pad(Indent);
    switch (S.getKind()) {
    case Stmt::Kind::VarDecl: {
      const auto &Decl = *cast<VarDeclStmt>(&S);
      Out << "var " << Decl.Name;
      if (Decl.Init) {
        Out << " = ";
        printExprNode(*Decl.Init);
      }
      Out << ";\n";
      return;
    }
    case Stmt::Kind::Assign: {
      const auto &Assign = *cast<AssignStmt>(&S);
      printExprNode(*Assign.Target);
      Out << " = ";
      printExprNode(*Assign.Value);
      Out << ";\n";
      return;
    }
    case Stmt::Kind::ExprStmt:
      printExprNode(*cast<ExprStmt>(&S)->E);
      Out << ";\n";
      return;
    case Stmt::Kind::If: {
      const auto &If = *cast<IfStmt>(&S);
      Out << "if (";
      printCondition(If.Cond);
      Out << ") {\n";
      for (const StmtPtr &Inner : If.Then)
        printStmtNode(*Inner, Indent + 1);
      pad(Indent);
      Out << "}";
      if (!If.Else.empty()) {
        Out << " else {\n";
        for (const StmtPtr &Inner : If.Else)
          printStmtNode(*Inner, Indent + 1);
        pad(Indent);
        Out << "}";
      }
      Out << "\n";
      return;
    }
    case Stmt::Kind::While: {
      const auto &While = *cast<WhileStmt>(&S);
      Out << "while (";
      printCondition(While.Cond);
      Out << ") {\n";
      for (const StmtPtr &Inner : While.Body)
        printStmtNode(*Inner, Indent + 1);
      pad(Indent);
      Out << "}\n";
      return;
    }
    case Stmt::Kind::Return: {
      const auto &Ret = *cast<ReturnStmt>(&S);
      Out << "return";
      if (Ret.Value) {
        Out << " ";
        printExprNode(*Ret.Value);
      }
      Out << ";\n";
      return;
    }
    }
  }

  std::string take() { return Out.str(); }

private:
  void pad(int Indent) {
    for (int I = 0; I < Indent; ++I)
      Out << "  ";
  }

  void printArgs(const std::vector<ExprPtr> &Args) {
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out << ", ";
      printExprNode(*Args[I]);
    }
  }

  void printCondition(const Condition &Cond) {
    printExprNode(*Cond.Lhs);
    switch (Cond.Op) {
    case CmpOp::None:
      return;
    case CmpOp::Eq:
      Out << " == ";
      break;
    case CmpOp::Ne:
      Out << " != ";
      break;
    case CmpOp::Lt:
      Out << " < ";
      break;
    case CmpOp::Gt:
      Out << " > ";
      break;
    }
    printExprNode(*Cond.Rhs);
  }

  void printClass(const ClassDecl &Class) {
    Out << "class " << Class.Name << " {\n";
    for (const std::string &Field : Class.Fields)
      Out << "  var " << Field << ";\n";
    for (const MethodDecl &Method : Class.Methods) {
      Out << "  def " << Method.Name << "(";
      for (size_t I = 0; I < Method.Params.size(); ++I) {
        if (I)
          Out << ", ";
        Out << Method.Params[I];
      }
      Out << ") {\n";
      for (const StmtPtr &S : Method.Body)
        printStmtNode(*S, 2);
      Out << "  }\n";
    }
    Out << "}\n";
  }

  std::ostringstream Out;
};

} // namespace

std::string uspec::printModule(const Module &M) {
  PrinterImpl Printer;
  Printer.printModuleNode(M);
  return Printer.take();
}

std::string uspec::printExpr(const Expr &E) {
  PrinterImpl Printer;
  Printer.printExprNode(E);
  return Printer.take();
}

std::string uspec::printStmt(const Stmt &S, int Indent) {
  PrinterImpl Printer;
  Printer.printStmtNode(S, Indent);
  return Printer.take();
}
