//===- Printer.h - MiniLang pretty printer ---------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes back to parseable MiniLang source. The corpus generator
/// emits ASTs and prints them, and round-trip tests assert
/// parse(print(parse(s))) == parse(s) structurally.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_PRINTER_H
#define USPEC_LANG_PRINTER_H

#include "lang/AST.h"

#include <string>

namespace uspec {

/// Renders \p M as MiniLang source text.
std::string printModule(const Module &M);

/// Renders a single expression (mainly for tests and debugging).
std::string printExpr(const Expr &E);

/// Renders a single statement at indent level \p Indent.
std::string printStmt(const Stmt &S, int Indent = 0);

} // namespace uspec

#endif // USPEC_LANG_PRINTER_H
