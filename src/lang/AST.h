//===- AST.h - MiniLang abstract syntax tree -------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MiniLang. The hierarchy uses LLVM-style kind
/// discriminators (no RTTI). Nodes are uniquely owned by their parents; a
/// Module owns everything transitively.
///
/// MiniLang in one example:
/// \code
///   class Main {
///     var cache;
///     def main() {
///       var map = new Map();
///       map.put("key", db.getFile("a"));
///       var f = map.get("key");
///       if (f != null) { f.getName(); }
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_AST_H
#define USPEC_LANG_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace uspec {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class for all expressions.
class Expr {
public:
  enum class Kind : uint8_t {
    New,       ///< new C(args)
    StringLit, ///< "text"
    IntLit,    ///< 42
    Null,      ///< null
    This,      ///< this
    VarRef,    ///< x
    FieldRead, ///< e.f
    Call,      ///< e.m(args) or m(args) with implicit this
  };

  virtual ~Expr() = default;

  Kind getKind() const { return TheKind; }
  int getLine() const { return Line; }

protected:
  Expr(Kind TheKind, int Line) : TheKind(TheKind), Line(Line) {}

private:
  Kind TheKind;
  int Line;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Allocation expression `new C(args)`. For program-defined classes, the
/// arguments are passed to the class's `init` method if one exists.
class NewExpr : public Expr {
public:
  NewExpr(std::string ClassName, std::vector<ExprPtr> Args, int Line)
      : Expr(Kind::New, Line), ClassName(std::move(ClassName)),
        Args(std::move(Args)) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::New; }

  std::string ClassName;
  std::vector<ExprPtr> Args;
};

/// String literal.
class StringLitExpr : public Expr {
public:
  StringLitExpr(std::string Value, int Line)
      : Expr(Kind::StringLit, Line), Value(std::move(Value)) {}

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::StringLit;
  }

  std::string Value;
};

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, int Line) : Expr(Kind::IntLit, Line), Value(Value) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

  int64_t Value;
};

/// The `null` constant.
class NullExpr : public Expr {
public:
  explicit NullExpr(int Line) : Expr(Kind::Null, Line) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::Null; }
};

/// The `this` reference, valid inside methods.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(int Line) : Expr(Kind::This, Line) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::This; }
};

/// A reference to a local variable or parameter.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, int Line)
      : Expr(Kind::VarRef, Line), Name(std::move(Name)) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

  std::string Name;
};

/// Field read `Base.Field` (without a following call).
class FieldReadExpr : public Expr {
public:
  FieldReadExpr(ExprPtr Base, std::string Field, int Line)
      : Expr(Kind::FieldRead, Line), Base(std::move(Base)),
        Field(std::move(Field)) {}

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::FieldRead;
  }

  ExprPtr Base;
  std::string Field;
};

/// Method call `Receiver.Method(Args)`. A null Receiver denotes an implicit
/// `this` call (`m(args)` inside a method body).
class CallExpr : public Expr {
public:
  CallExpr(ExprPtr Receiver, std::string Method, std::vector<ExprPtr> Args,
           int Line)
      : Expr(Kind::Call, Line), Receiver(std::move(Receiver)),
        Method(std::move(Method)), Args(std::move(Args)) {}

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

  ExprPtr Receiver; // may be null: implicit this
  std::string Method;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

/// Comparison operator in a branch/loop condition.
enum class CmpOp : uint8_t { None, Eq, Ne, Lt, Gt };

/// Branch/loop condition: `Lhs` alone (truthiness) or `Lhs op Rhs`.
struct Condition {
  ExprPtr Lhs;
  CmpOp Op = CmpOp::None;
  ExprPtr Rhs; // null when Op == None
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class for all statements.
class Stmt {
public:
  enum class Kind : uint8_t {
    VarDecl,
    Assign,
    ExprStmt,
    If,
    While,
    Return,
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return TheKind; }
  int getLine() const { return Line; }

protected:
  Stmt(Kind TheKind, int Line) : TheKind(TheKind), Line(Line) {}

private:
  Kind TheKind;
  int Line;
};

using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// `var x;` or `var x = init;`
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, ExprPtr Init, int Line)
      : Stmt(Kind::VarDecl, Line), Name(std::move(Name)),
        Init(std::move(Init)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::VarDecl; }

  std::string Name;
  ExprPtr Init; // may be null
};

/// `lvalue = expr;` where lvalue is a VarRef or FieldRead.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, ExprPtr Value, int Line)
      : Stmt(Kind::Assign, Line), Target(std::move(Target)),
        Value(std::move(Value)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

  ExprPtr Target;
  ExprPtr Value;
};

/// A bare expression evaluated for effect (typically a call).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, int Line) : Stmt(Kind::ExprStmt, Line), E(std::move(E)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }

  ExprPtr E;
};

/// `if (cond) { ... } else { ... }`
class IfStmt : public Stmt {
public:
  IfStmt(Condition Cond, Block Then, Block Else, int Line)
      : Stmt(Kind::If, Line), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

  Condition Cond;
  Block Then;
  Block Else; // possibly empty
};

/// `while (cond) { ... }`
class WhileStmt : public Stmt {
public:
  WhileStmt(Condition Cond, Block Body, int Line)
      : Stmt(Kind::While, Line), Cond(std::move(Cond)), Body(std::move(Body)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

  Condition Cond;
  Block Body;
};

/// `return;` or `return expr;`
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, int Line)
      : Stmt(Kind::Return, Line), Value(std::move(Value)) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }

  ExprPtr Value; // may be null
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// `def name(params) { body }`
struct MethodDecl {
  std::string Name;
  std::vector<std::string> Params;
  Block Body;
  int Line = 0;
};

/// `class Name { var f; def m() {...} ... }`
struct ClassDecl {
  std::string Name;
  std::vector<std::string> Fields;
  std::vector<MethodDecl> Methods;
  int Line = 0;

  /// Returns the method named \p Name or null.
  const MethodDecl *findMethod(const std::string &MethodName) const {
    for (const MethodDecl &M : Methods)
      if (M.Name == MethodName)
        return &M;
    return nullptr;
  }
};

/// A parsed source file.
struct Module {
  std::string Name; // source identifier, e.g. file name
  std::vector<ClassDecl> Classes;

  /// Returns the class named \p ClassName or null.
  const ClassDecl *findClass(const std::string &ClassName) const {
    for (const ClassDecl &C : Classes)
      if (C.Name == ClassName)
        return &C;
    return nullptr;
  }
};

/// LLVM-style checked cast helpers for Expr/Stmt (no RTTI).
template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to wrong node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(static_cast<const From *>(Node)) &&
         "cast to wrong node kind");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return isa<To>(static_cast<const From *>(Node)) ? static_cast<To *>(Node)
                                                  : nullptr;
}

} // namespace uspec

#endif // USPEC_LANG_AST_H
