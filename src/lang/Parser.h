//===- Parser.h - MiniLang recursive-descent parser ------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser building a Module from MiniLang source text.
/// Errors are reported through a DiagnosticSink; parsing continues after
/// recoverable errors so multiple problems surface in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_PARSER_H
#define USPEC_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <optional>
#include <string_view>
#include <vector>

namespace uspec {

/// Parses MiniLang source into a Module.
class Parser {
public:
  /// Parses \p Source (named \p ModuleName) and returns the module, or
  /// std::nullopt if parsing hit a non-recoverable error. Check
  /// \p Diags.hasErrors() even on success.
  static std::optional<Module> parse(std::string_view Source,
                                     std::string ModuleName,
                                     DiagnosticSink &Diags);

private:
  Parser(std::vector<Token> Tokens, DiagnosticSink &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  const Token &peek() const { return Tokens[Pos]; }
  const Token &previous() const { return Tokens[Pos - 1]; }
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToClassBoundary();

  std::optional<Module> parseModule(std::string ModuleName);
  std::optional<ClassDecl> parseClass();
  std::optional<MethodDecl> parseMethod();
  bool parseBlock(Block &Out);
  StmtPtr parseStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  std::optional<Condition> parseCondition();
  ExprPtr parseExpr();
  ExprPtr parsePrimary();
  bool parseArgs(std::vector<ExprPtr> &Out);

  std::vector<Token> Tokens;
  DiagnosticSink &Diags;
  size_t Pos = 0;
};

} // namespace uspec

#endif // USPEC_LANG_PARSER_H
