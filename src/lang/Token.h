//===- Token.h - MiniLang token definitions --------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type for MiniLang, the small
/// object-oriented language this reproduction uses in place of the paper's
/// Java/Python corpus (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_TOKEN_H
#define USPEC_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace uspec {

enum class TokenKind : uint8_t {
  EndOfFile,
  Identifier,
  StringLiteral,
  IntLiteral,
  // Keywords.
  KwClass,
  KwDef,
  KwVar,
  KwNew,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwNull,
  KwThis,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Semicolon,
  Dot,
  Assign,    // =
  EqualEqual,
  NotEqual,
  Less,
  Greater,
  Error,
};

/// Returns a human-readable name for \p Kind ("identifier", "'{'", ...).
const char *tokenKindName(TokenKind Kind);

/// A single lexed token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text; // Identifier spelling or literal value (unquoted).
  int Line = 0;
  int Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace uspec

#endif // USPEC_LANG_TOKEN_H
