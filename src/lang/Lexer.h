//===- Lexer.h - MiniLang lexer --------------------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniLang. Supports `//` line comments, string
/// literals with simple escapes, and decimal integer literals.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_LANG_LEXER_H
#define USPEC_LANG_LEXER_H

#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace uspec {

/// Single-pass lexer over an in-memory buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticSink &Diags);

  /// Lexes the next token; returns an EndOfFile token at the end (repeatedly
  /// if called again).
  Token next();

  /// Lexes the whole input. The trailing EndOfFile token is included.
  std::vector<Token> lexAll();

private:
  char peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }
  char peekAhead() const {
    return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
  }
  char advance();
  void skipTrivia();
  Token makeToken(TokenKind Kind, std::string Text, int Line, int Column);
  Token lexIdentifierOrKeyword(int Line, int Column);
  Token lexString(int Line, int Column);
  Token lexNumber(int Line, int Column);

  std::string_view Source;
  DiagnosticSink &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
};

} // namespace uspec

#endif // USPEC_LANG_LEXER_H
