//===- Parser.cpp - MiniLang recursive-descent parser ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cstdlib>

using namespace uspec;

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  ++Pos;
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(peek().Line, peek().Column,
              std::string("expected ") + tokenKindName(Kind) + " " + Context +
                  ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::synchronizeToClassBoundary() {
  while (!check(TokenKind::EndOfFile) && !check(TokenKind::KwClass))
    ++Pos;
}

std::optional<Module> Parser::parse(std::string_view Source,
                                    std::string ModuleName,
                                    DiagnosticSink &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseModule(std::move(ModuleName));
}

std::optional<Module> Parser::parseModule(std::string ModuleName) {
  Module M;
  M.Name = std::move(ModuleName);
  while (!check(TokenKind::EndOfFile)) {
    auto Class = parseClass();
    if (!Class) {
      synchronizeToClassBoundary();
      continue;
    }
    M.Classes.push_back(std::move(*Class));
  }
  return M;
}

std::optional<ClassDecl> Parser::parseClass() {
  if (!expect(TokenKind::KwClass, "at top level"))
    return std::nullopt;
  ClassDecl Class;
  Class.Line = previous().Line;
  if (!expect(TokenKind::Identifier, "after 'class'"))
    return std::nullopt;
  Class.Name = previous().Text;
  if (!expect(TokenKind::LBrace, "after class name"))
    return std::nullopt;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (match(TokenKind::KwVar)) {
      if (!expect(TokenKind::Identifier, "after 'var' in field declaration"))
        return std::nullopt;
      Class.Fields.push_back(previous().Text);
      if (!expect(TokenKind::Semicolon, "after field name"))
        return std::nullopt;
      continue;
    }
    auto Method = parseMethod();
    if (!Method)
      return std::nullopt;
    Class.Methods.push_back(std::move(*Method));
  }
  if (!expect(TokenKind::RBrace, "to close class body"))
    return std::nullopt;
  return Class;
}

std::optional<MethodDecl> Parser::parseMethod() {
  if (!expect(TokenKind::KwDef, "in class body"))
    return std::nullopt;
  MethodDecl Method;
  Method.Line = previous().Line;
  if (!expect(TokenKind::Identifier, "after 'def'"))
    return std::nullopt;
  Method.Name = previous().Text;
  if (!expect(TokenKind::LParen, "after method name"))
    return std::nullopt;
  if (!check(TokenKind::RParen)) {
    do {
      if (!expect(TokenKind::Identifier, "in parameter list"))
        return std::nullopt;
      Method.Params.push_back(previous().Text);
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "to close parameter list"))
    return std::nullopt;
  if (!expect(TokenKind::LBrace, "to open method body"))
    return std::nullopt;
  if (!parseBlock(Method.Body))
    return std::nullopt;
  return Method;
}

bool Parser::parseBlock(Block &Out) {
  // The opening brace has been consumed by the caller.
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    StmtPtr S = parseStatement();
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
  return expect(TokenKind::RBrace, "to close block");
}

StmtPtr Parser::parseStatement() {
  int Line = peek().Line;

  if (match(TokenKind::KwVar)) {
    if (!expect(TokenKind::Identifier, "after 'var'"))
      return nullptr;
    std::string Name = previous().Text;
    ExprPtr Init;
    if (match(TokenKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after variable declaration"))
      return nullptr;
    return std::make_unique<VarDeclStmt>(std::move(Name), std::move(Init),
                                         Line);
  }

  if (check(TokenKind::KwIf))
    return parseIf();
  if (check(TokenKind::KwWhile))
    return parseWhile();

  if (match(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semicolon)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after return"))
      return nullptr;
    return std::make_unique<ReturnStmt>(std::move(Value), Line);
  }

  // Expression statement or assignment.
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (match(TokenKind::Assign)) {
    if (!isa<VarRefExpr>(E.get()) && !isa<FieldReadExpr>(E.get())) {
      Diags.error(Line, 0, "assignment target must be a variable or field");
      return nullptr;
    }
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after assignment"))
      return nullptr;
    return std::make_unique<AssignStmt>(std::move(E), std::move(Value), Line);
  }
  if (!expect(TokenKind::Semicolon, "after expression statement"))
    return nullptr;
  return std::make_unique<ExprStmt>(std::move(E), Line);
}

std::optional<Condition> Parser::parseCondition() {
  Condition Cond;
  Cond.Lhs = parseExpr();
  if (!Cond.Lhs)
    return std::nullopt;
  if (match(TokenKind::EqualEqual))
    Cond.Op = CmpOp::Eq;
  else if (match(TokenKind::NotEqual))
    Cond.Op = CmpOp::Ne;
  else if (match(TokenKind::Less))
    Cond.Op = CmpOp::Lt;
  else if (match(TokenKind::Greater))
    Cond.Op = CmpOp::Gt;
  if (Cond.Op != CmpOp::None) {
    Cond.Rhs = parseExpr();
    if (!Cond.Rhs)
      return std::nullopt;
  }
  return Cond;
}

StmtPtr Parser::parseIf() {
  int Line = peek().Line;
  expect(TokenKind::KwIf, "");
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  auto Cond = parseCondition();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "to close condition"))
    return nullptr;
  if (!expect(TokenKind::LBrace, "to open 'if' body"))
    return nullptr;
  Block Then;
  if (!parseBlock(Then))
    return nullptr;
  Block Else;
  if (match(TokenKind::KwElse)) {
    if (!expect(TokenKind::LBrace, "to open 'else' body"))
      return nullptr;
    if (!parseBlock(Else))
      return nullptr;
  }
  return std::make_unique<IfStmt>(std::move(*Cond), std::move(Then),
                                  std::move(Else), Line);
}

StmtPtr Parser::parseWhile() {
  int Line = peek().Line;
  expect(TokenKind::KwWhile, "");
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  auto Cond = parseCondition();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "to close condition"))
    return nullptr;
  if (!expect(TokenKind::LBrace, "to open 'while' body"))
    return nullptr;
  Block Body;
  if (!parseBlock(Body))
    return nullptr;
  return std::make_unique<WhileStmt>(std::move(*Cond), std::move(Body), Line);
}

bool Parser::parseArgs(std::vector<ExprPtr> &Out) {
  if (check(TokenKind::RParen))
    return true;
  do {
    ExprPtr Arg = parseExpr();
    if (!Arg)
      return false;
    Out.push_back(std::move(Arg));
  } while (match(TokenKind::Comma));
  return true;
}

ExprPtr Parser::parsePrimary() {
  int Line = peek().Line;

  if (match(TokenKind::KwNew)) {
    if (!expect(TokenKind::Identifier, "after 'new'"))
      return nullptr;
    std::string ClassName = previous().Text;
    if (!expect(TokenKind::LParen, "after class name in 'new'"))
      return nullptr;
    std::vector<ExprPtr> Args;
    if (!parseArgs(Args))
      return nullptr;
    if (!expect(TokenKind::RParen, "to close 'new' arguments"))
      return nullptr;
    return std::make_unique<NewExpr>(std::move(ClassName), std::move(Args),
                                     Line);
  }
  if (match(TokenKind::StringLiteral))
    return std::make_unique<StringLitExpr>(previous().Text, Line);
  if (match(TokenKind::IntLiteral))
    return std::make_unique<IntLitExpr>(
        std::strtoll(previous().Text.c_str(), nullptr, 10), Line);
  if (match(TokenKind::KwNull))
    return std::make_unique<NullExpr>(Line);
  if (match(TokenKind::KwThis))
    return std::make_unique<ThisExpr>(Line);
  if (match(TokenKind::Identifier)) {
    std::string Name = previous().Text;
    if (match(TokenKind::LParen)) {
      // Implicit-this call m(args).
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      if (!expect(TokenKind::RParen, "to close call arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(nullptr, std::move(Name),
                                        std::move(Args), Line);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Line);
  }
  Diags.error(peek().Line, peek().Column,
              std::string("expected expression, found ") +
                  tokenKindName(peek().Kind));
  return nullptr;
}

ExprPtr Parser::parseExpr() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (match(TokenKind::Dot)) {
    int Line = previous().Line;
    if (!expect(TokenKind::Identifier, "after '.'"))
      return nullptr;
    std::string Member = previous().Text;
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      if (!expect(TokenKind::RParen, "to close call arguments"))
        return nullptr;
      E = std::make_unique<CallExpr>(std::move(E), std::move(Member),
                                     std::move(Args), Line);
    } else {
      E = std::make_unique<FieldReadExpr>(std::move(E), std::move(Member),
                                          Line);
    }
  }
  return E;
}
