//===- Server.cpp - Resident alias-query server ---------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "artifact/Checkpoint.h"
#include "support/EventLog.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"
#include "support/ParallelFor.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace uspec;
using namespace uspec::service;

namespace {

const char *verbName(Verb V) {
  switch (V) {
  case Verb::Analyze: return "analyze";
  case Verb::Alias: return "alias";
  case Verb::Specs: return "specs";
  case Verb::Typestate: return "typestate";
  case Verb::Taint: return "taint";
  case Verb::Stats: return "stats";
  case Verb::Metrics: return "metrics";
  case Verb::Reload: return "reload";
  case Verb::Shutdown: return "shutdown";
  case Verb::CacheKeys: return "cachekeys";
  case Verb::TestBlock: return "test_block";
  }
  return "?";
}

} // namespace

//===----------------------------------------------------------------------===//
// Model state
//===----------------------------------------------------------------------===//

ModelState ModelState::make(ServiceSpecs Specs, uint64_t Generation,
                            std::string Source) {
  ModelState M;
  M.Checksum = hashString(Specs.Text);
  M.Specs = std::move(Specs);
  M.Generation = Generation;
  M.Source = std::move(Source);
  return M;
}

std::optional<ModelState> service::loadModelState(const std::string &Path,
                                                  std::string *Err) {
  try {
    USPEC_FAULT_POINT("service.reload.load");
  } catch (const FaultInjected &F) {
    if (Err)
      *Err = F.what();
    return std::nullopt;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open model '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Bytes = SS.str();

  if (Bytes.rfind("USPB", 0) == 0) {
    // Artifact: the container open validates per-section checksums, so a
    // torn or corrupt file is rejected here and the old model keeps
    // serving.
    StringInterner Strings;
    ArtifactError DecodeErr;
    std::optional<LearnArtifacts> A =
        loadLearnArtifacts(Bytes, Strings, &DecodeErr);
    if (!A) {
      if (Err)
        *Err = "artifact '" + Path + "': " + DecodeErr.str();
      return std::nullopt;
    }
    uint64_t Generation =
        A->Lineage ? A->Lineage->Generation : A->Manifest.Generation;
    return ModelState::make(
        ServiceSpecs::fromSpecSet(A->Result.Selected, Strings), Generation,
        Path);
  }

  size_t BadLine = 0;
  std::optional<ServiceSpecs> Specs = ServiceSpecs::fromText(Bytes, &BadLine);
  if (!Specs) {
    if (Err)
      *Err = "spec file '" + Path + "': malformed spec on line " +
             std::to_string(BadLine);
    return std::nullopt;
  }
  return ModelState::make(std::move(*Specs), 0, Path);
}

Server::Server(ServerConfig ConfigIn, ServiceSpecs SpecsIn)
    : Server(std::move(ConfigIn),
             ModelState::make(std::move(SpecsIn), 0, "inline")) {}

Server::Server(ServerConfig ConfigIn, ModelState ModelIn)
    : Config(ConfigIn),
      Model(std::make_shared<const ModelState>(std::move(ModelIn))),
      Cache(Config.CacheCapacity, Config.CacheShards) {
  EffectiveWorkers =
      Config.Workers ? Config.Workers
                     : std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(EffectiveWorkers + 4); // headroom for replacements
  for (unsigned I = 0; I < EffectiveWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Watchdog = std::thread([this] { watchdogLoop(); });
}

Server::~Server() {
  releaseTestGate(); // never leave a parked worker behind
  drain();
}

std::future<std::string> Server::submit(std::string Line) {
  auto State = std::make_shared<JobState>();
  std::future<std::string> Future = State->Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining) {
      Metrics.recordRejectedDraining();
      State->answer(errorResponse(
          "", "shutting_down", "server is draining; request rejected"));
      return Future;
    }
    if (Queue.size() >= Config.QueueCapacity) {
      // Explicit backpressure: answer now, never block the producer or
      // grow the queue past its bound.
      Metrics.recordOverloaded();
      State->answer(errorResponse(
          "", "overloaded",
          "admission queue full (capacity " +
              std::to_string(Config.QueueCapacity) + "); retry later"));
      return Future;
    }
    Metrics.recordAdmitted();
    TimePoint Now = std::chrono::steady_clock::now();
    // Deadline at admission time, from the request's own deadline_ms (raw
    // scan — a queued request must be able to expire without ever being
    // parsed) or the server default.
    uint64_t Ms = scanDeadlineMs(Line).value_or(Config.RequestTimeoutMs);
    // The raw id is scanned up front so error responses issued without a
    // parse (watchdog deadline, worker death) can still echo it.
    State->Id = scanRequestId(Line);
    if (Ms != 0) {
      State->Deadline = Now + std::chrono::milliseconds(Ms);
      State->HasDeadline = true;
    }
    Queue.push_back({std::move(Line), State, Now});
  }
  if (State->HasDeadline)
    watchJob(State);
  QueueCv.notify_one();
  return Future;
}

std::string Server::handle(std::string Line) {
  return submit(std::move(Line)).get();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Draining;
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  Draining = true;
}

void Server::drain() {
  beginDrain();
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    DrainedCv.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
    StopWorkers = true;
  }
  QueueCv.notify_all();
  // Once StopWorkers is set no replacement workers can be spawned, so the
  // vector is stable; index loop in case a dying worker appended late.
  for (size_t I = 0; I < Workers.size(); ++I)
    if (Workers[I].joinable())
      Workers[I].join();
  {
    std::lock_guard<std::mutex> Lock(WatchMutex);
    StopWatchdog = true;
  }
  WatchCv.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
}

void Server::releaseTestGate() {
  {
    std::lock_guard<std::mutex> Lock(GateMutex);
    GateOpen = true;
  }
  GateCv.notify_all();
}

std::shared_ptr<const ModelState> Server::model() const {
  std::lock_guard<std::mutex> Lock(ModelMutex);
  return Model;
}

void Server::swapModel(ModelState NewModel) {
  auto Fresh = std::make_shared<const ModelState>(std::move(NewModel));
  uint64_t Generation = Fresh->Generation;
  size_t Specs = Fresh->Specs.Lines.size();
  {
    std::lock_guard<std::mutex> Lock(ModelMutex);
    Model = std::move(Fresh);
  }
  Metrics.recordModelReload();
  if (events::enabled())
    events::emit("reload", {{"generation", std::to_string(Generation)},
                            {"specs", std::to_string(Specs)}});
}

bool Server::reloadModel(std::string Path, std::string *Err) {
  // One reload at a time; queries are never blocked by this lock — they
  // read through model(), which only takes ModelMutex for a pointer copy.
  std::lock_guard<std::mutex> Lock(ReloadMutex);
  if (Path.empty())
    Path = Config.ModelPath;
  if (Path.empty()) {
    if (Err)
      *Err = "no model path: server was started without one and the "
             "request named none";
    return false;
  }
  std::optional<ModelState> Fresh = loadModelState(Path, Err);
  if (!Fresh)
    return false;
  swapModel(std::move(*Fresh));
  return true;
}

ModelInfo Server::modelInfo() const {
  std::shared_ptr<const ModelState> M = model();
  ModelInfo Info;
  Info.Generation = M->Generation;
  Info.Checksum = M->Checksum;
  Info.Specs = M->Specs.Lines.size();
  return Info;
}

std::string Server::statsJson() {
  size_t Depth = 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Depth = Queue.size();
  }
  return Metrics.json(EffectiveWorkers, Depth, Config.QueueCapacity,
                      Cache.stats(), modelInfo());
}

std::string Server::metricsText() {
  size_t Depth = 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Depth = Queue.size();
  }
  return Metrics.prometheus(EffectiveWorkers, Depth, Config.QueueCapacity,
                            Cache.stats(), modelInfo());
}

void Server::workerLoop() {
  for (;;) {
    Job TheJob;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return !Queue.empty() || StopWorkers; });
      if (Queue.empty()) {
        if (StopWorkers)
          return;
        continue;
      }
      TheJob = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    TimePoint Popped = std::chrono::steady_clock::now();
    double QueueSeconds =
        std::chrono::duration<double>(Popped - TheJob.Admitted).count();
    Metrics.recordQueueWait(QueueSeconds);
    if (trace::enabled()) {
      std::vector<std::pair<const char *, std::string>> Args;
      if (!TheJob.State->Id.empty())
        Args.emplace_back("id", TheJob.State->Id);
      trace::completeEvent("service.queue_wait", TheJob.Admitted, Popped,
                           std::move(Args));
    }
    // Expired (or otherwise already answered) while queued: skip the work,
    // the watchdog has resolved the promise.
    if (TheJob.State->Answered.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        DrainedCv.notify_all();
      continue;
    }
    std::string Response;
    RequestInfo Info;
    {
      TraceSpan Span("service.request");
      try {
        // Injected worker death (`service.worker`): FaultInjected propagates
        // to the catch below, which replaces this worker and exits the thread
        // — from the outside, the worker crashed mid-request.
        USPEC_FAULT_POINT("service.worker");
        Response = handleRequest(TheJob.Line, TheJob, &Info);
      } catch (const FaultInjected &) {
        replaceDeadWorker(TheJob);
        return;
      } catch (const std::exception &E) {
        // Any other escape is answered `internal`; the worker survives.
        Response = errorResponse("", "internal",
                                 std::string("request failed: ") + E.what());
      }
      if (Span.active()) {
        Span.arg("verb", Info.Verb);
        if (!TheJob.State->Id.empty())
          Span.arg("id", TheJob.State->Id);
        if (!Info.TraceId.empty())
          Span.arg("trace_id", Info.TraceId);
      }
    }
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - TheJob.Admitted)
                         .count();
    // "ok" is decided by the envelope the handler chose.
    bool Ok = Response.find("\"ok\":true") != std::string::npos;
    if (TheJob.State->answer(std::move(Response))) {
      Metrics.recordCompleted(Seconds, Ok);
      if (Config.SlowRequestMs != 0 &&
          Seconds * 1e3 >= static_cast<double>(Config.SlowRequestMs))
        logSlowRequest(Info, TheJob, Seconds, QueueSeconds, Ok);
    }
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        DrainedCv.notify_all();
    }
  }
}

void Server::replaceDeadWorker(Job &TheJob) {
  Metrics.recordWorkerDeath();
  if (events::enabled())
    events::emit("worker_death", {{"request", TheJob.State->Id}});
  TheJob.State->answer(errorResponse(
      TheJob.State->Id, "internal",
      "worker died while processing this request; a replacement was "
      "started"));
  std::lock_guard<std::mutex> Lock(QueueMutex);
  // InFlight bookkeeping and the replacement spawn are one critical
  // section: when drain() sees InFlight == 0, the pool is already whole.
  --InFlight;
  if (!StopWorkers)
    Workers.emplace_back([this] { workerLoop(); });
  if (Queue.empty() && InFlight == 0)
    DrainedCv.notify_all();
}

void Server::logSlowRequest(const RequestInfo &Info, const Job &TheJob,
                            double TotalSeconds, double QueueSeconds,
                            bool Ok) {
  // One key=value line per slow request, machine-greppable. The id is the
  // raw JSON token the client sent (so string ids appear quoted).
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "uspec-slow verb=%s total_ms=%.3f queue_ms=%.3f ok=%s",
                Info.Verb, TotalSeconds * 1e3, QueueSeconds * 1e3,
                Ok ? "true" : "false");
  std::string Line = Buf;
  if (!TheJob.State->Id.empty())
    Line += " id=" + TheJob.State->Id;
  if (!Info.TraceId.empty())
    Line += " trace_id=" + Info.TraceId;
  Line += "\n";
  std::ostream &Out = Config.SlowLog ? *Config.SlowLog : std::cerr;
  std::lock_guard<std::mutex> Lock(SlowLogMutex);
  Out << Line;
  Out.flush();
}

void Server::watchJob(std::shared_ptr<JobState> State) {
  {
    std::lock_guard<std::mutex> Lock(WatchMutex);
    Watched.push_back(std::move(State));
  }
  WatchCv.notify_all();
}

void Server::watchdogLoop() {
  std::unique_lock<std::mutex> Lock(WatchMutex);
  for (;;) {
    // Sleep until the earliest pending deadline (or a new registration).
    TimePoint Earliest = TimePoint::max();
    for (const auto &S : Watched)
      if (!S->Answered.load(std::memory_order_acquire) &&
          S->Deadline < Earliest)
        Earliest = S->Deadline;
    if (StopWatchdog)
      return;
    if (Earliest == TimePoint::max())
      WatchCv.wait(Lock);
    else
      WatchCv.wait_until(Lock, Earliest);
    if (StopWatchdog)
      return;

    TimePoint Now = std::chrono::steady_clock::now();
    for (auto &S : Watched) {
      if (S->Answered.load(std::memory_order_acquire) || S->Deadline > Now)
        continue;
      // Over deadline: answer with a structured error. The worker (if any)
      // keeps running — its eventual answer() is a no-op — and frees up on
      // its own via the cooperative budget.
      if (S->answer(errorResponse(S->Id, "deadline_exceeded",
                                  "request exceeded its deadline")))
        Metrics.recordDeadlineExceeded();
    }
    // Drop resolved entries.
    Watched.erase(std::remove_if(Watched.begin(), Watched.end(),
                                 [](const std::shared_ptr<JobState> &S) {
                                   return S->Answered.load(
                                       std::memory_order_acquire);
                                 }),
                  Watched.end());
  }
}

std::string Server::handleRequest(const std::string &Line, const Job &TheJob,
                                  RequestInfo *Info) {
  if (Line.size() > Config.MaxRequestBytes)
    return errorResponse("", "oversized",
                         "request line of " + std::to_string(Line.size()) +
                             " bytes exceeds the " +
                             std::to_string(Config.MaxRequestBytes) +
                             "-byte limit");
  Request R;
  std::string Err;
  if (!parseRequest(Line, R, &Err, Config.EnableTestVerbs))
    return errorResponse(R.Id, "bad_request", Err, R.TraceId);
  if (Info) {
    Info->Verb = verbName(R.TheVerb);
    Info->TraceId = R.TraceId;
  }

  // Per-request budget: the step cap bounds analysis work; the deadline
  // (request's own, else the server default) makes the worker notice an
  // expiry cooperatively even when the admission-time scan missed it.
  Budget B;
  bool UseBudget = false;
  if (Config.MaxStepsPerRequest != 0) {
    B.setStepLimit(Config.MaxStepsPerRequest);
    UseBudget = true;
  }
  uint64_t Ms = R.DeadlineMs ? R.DeadlineMs : Config.RequestTimeoutMs;
  if (Ms != 0) {
    B.setDeadlinePoint(TheJob.Admitted + std::chrono::milliseconds(Ms));
    UseBudget = true;
  }
  std::string Response = handleParsed(R, UseBudget ? &B : nullptr);
  if (B.exhausted() && std::string_view(B.reason()) == "deadline")
    return errorResponse(R.Id, "deadline_exceeded",
                         "request exceeded its deadline", R.TraceId);
  return Response;
}

std::string Server::handleParsed(const Request &R, Budget *B) {
  // One model snapshot per request: every verb below answers under exactly
  // one generation, even if a reload lands mid-request.
  std::shared_ptr<const ModelState> M = model();
  // Verb-specific payload rendering is wrapped in a `service.serialize`
  // span; analyze's payload is memoized in the cached analysis (serialized
  // inside the `service.analyze` span on the miss that produced it).
  auto Serialized = [](auto &&Render) {
    TraceSpan Span("service.serialize");
    return Render();
  };
  switch (R.TheVerb) {
  case Verb::Analyze: {
    std::string Err;
    auto PA = analysisFor(*M, R.Program, R.Name, R.Coverage, R.NoCache, &Err, B);
    if (!PA)
      return errorResponse(R.Id, "parse_error", Err, R.TraceId);
    return okResponse(R.Id, PA->AnalyzeJson, R.TraceId);
  }
  case Verb::Alias: {
    std::string Err;
    auto PA = analysisFor(*M, R.Program, R.Name, R.Coverage, R.NoCache, &Err, B);
    if (!PA)
      return errorResponse(R.Id, "parse_error", Err, R.TraceId);
    return okResponse(
        R.Id, Serialized([&] { return aliasPayload(*PA, R.A, R.B); }),
        R.TraceId);
  }
  case Verb::Typestate: {
    std::string Err;
    auto PA = analysisFor(*M, R.Program, R.Name, R.Coverage, R.NoCache, &Err, B);
    if (!PA)
      return errorResponse(R.Id, "parse_error", Err, R.TraceId);
    return okResponse(
        R.Id,
        Serialized([&] { return typestatePayload(*PA, R.Check, R.Use); }),
        R.TraceId);
  }
  case Verb::Taint: {
    std::string Err;
    auto PA = analysisFor(*M, R.Program, R.Name, R.Coverage, R.NoCache, &Err, B);
    if (!PA)
      return errorResponse(R.Id, "parse_error", Err, R.TraceId);
    return okResponse(R.Id, Serialized([&] {
                        return taintPayload(*PA, R.Sources, R.Sinks,
                                            R.Sanitizers);
                      }),
                      R.TraceId);
  }
  case Verb::Specs:
    return okResponse(R.Id,
                      Serialized([&] { return specsPayload(M->Specs); }),
                      R.TraceId);
  case Verb::Reload: {
    std::string Err;
    if (!reloadModel(R.ModelPath, &Err))
      return errorResponse(R.Id, "reload_failed", Err, R.TraceId);
    ModelInfo Info = modelInfo();
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"generation\":%llu,\"specs\":%zu,"
                  "\"checksum\":\"%016llx\"}",
                  static_cast<unsigned long long>(Info.Generation),
                  Info.Specs, static_cast<unsigned long long>(Info.Checksum));
    return okResponse(R.Id, Buf, R.TraceId);
  }
  case Verb::Stats:
    return okResponse(R.Id, Serialized([&] { return statsJson(); }),
                      R.TraceId);
  case Verb::Metrics: {
    // The exposition text travels as a JSON string result.
    std::string Payload;
    {
      TraceSpan Span("service.serialize");
      appendJsonString(Payload, metricsText());
    }
    return okResponse(R.Id, Payload, R.TraceId);
  }
  case Verb::CacheKeys: {
    // Resident cache keys (hottest-first per shard), rendered as fixed-width
    // hex — the router's warm-handoff verification reads these to check a
    // rejoined replica was actually warmed.
    return okResponse(R.Id, Serialized([&] {
                        std::vector<uint64_t> Keys =
                            Cache.hotFingerprints(256);
                        std::string Payload =
                            "{\"count\":" + std::to_string(Keys.size()) +
                            ",\"keys\":[";
                        char Buf[32];
                        for (size_t I = 0; I < Keys.size(); ++I) {
                          if (I)
                            Payload += ',';
                          std::snprintf(
                              Buf, sizeof(Buf), "\"%016llx\"",
                              static_cast<unsigned long long>(Keys[I]));
                          Payload += Buf;
                        }
                        Payload += "]}";
                        return Payload;
                      }),
                      R.TraceId);
  }
  case Verb::Shutdown:
    beginDrain();
    return okResponse(R.Id, "{\"draining\":true}", R.TraceId);
  case Verb::TestBlock: {
    std::unique_lock<std::mutex> Lock(GateMutex);
    GateCv.wait(Lock, [this] { return GateOpen; });
    return okResponse(R.Id, "{\"blocked\":true}", R.TraceId);
  }
  }
  return errorResponse(R.Id, "internal", "unhandled verb", R.TraceId);
}

std::shared_ptr<const ProgramAnalysis>
Server::analysisFor(const ModelState &M, const std::string &Program,
                    const std::string &Name, bool Coverage, bool NoCache,
                    std::string *Error, Budget *B) {
  // Keys mix program identity, the per-request analysis option and the
  // model checksum: entries computed under a swapped-out generation can
  // never answer requests under this one (they age out via LRU).
  uint64_t SourceKey =
      hashValues(hashString(Program), Coverage ? 1ull : 0ull, M.Checksum);
  {
    TraceSpan Probe("service.cache_probe");
    if (auto PA = Cache.findBySource(SourceKey)) {
      Metrics.recordCacheHit();
      return PA;
    }
  }
  auto Parsed = [&] {
    TraceSpan Span("service.parse");
    return parseProgram(Program, Name, Error);
  }();
  if (!Parsed)
    return nullptr;
  uint64_t FpKey =
      hashValues(Parsed->Fingerprint, Coverage ? 1ull : 0ull, M.Checksum);
  {
    TraceSpan Probe("service.cache_probe");
    if (auto PA = Cache.findByFingerprint(FpKey)) {
      // Textually new, structurally known: remember the alias so the next
      // byte-identical submission skips the parse too.
      if (!NoCache)
        Cache.aliasSource(SourceKey, FpKey);
      Metrics.recordCacheHit();
      return PA;
    }
  }
  Metrics.recordCacheMiss();
  std::shared_ptr<const ProgramAnalysis> PA;
  {
    TraceSpan Span("service.analyze");
    TimePoint T0 = std::chrono::steady_clock::now();
    PA = finishAnalysis(std::move(*Parsed), M.Specs, Coverage, B);
    Metrics.recordAnalyze(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - T0)
                              .count());
  }
  // A Bounded (budget-exhausted) result is a degraded ⊤ answer specific to
  // this request's budget; caching it would poison later requests with
  // imprecise payloads.
  if (PA->Result->Bounded)
    return PA;
  // `no_cache` (the router's hedged-request dedup rule): answer, but leave
  // this partition's cache untouched — a non-owner replica must not adopt
  // keys the ring assigns elsewhere.
  if (NoCache)
    return PA;
  return Cache.insert(SourceKey, FpKey, std::move(PA));
}

//===----------------------------------------------------------------------===//
// Stream transport (stdin/stdout)
//===----------------------------------------------------------------------===//

int Server::serveStream(std::istream &In, std::ostream &Out) {
  // Responses are written in request order by a dedicated writer, so
  // clients may pipeline without matching ids. The pending window is
  // bounded: the reader blocks once responses outpace the consumer, which
  // is the correct backpressure for a full output pipe.
  const size_t PendingBound = Config.QueueCapacity + EffectiveWorkers + 8;
  std::mutex PendingMutex;
  std::condition_variable PendingCv;
  std::deque<std::future<std::string>> Pending;
  bool ReaderDone = false;

  std::thread Writer([&] {
    for (;;) {
      std::future<std::string> F;
      {
        std::unique_lock<std::mutex> Lock(PendingMutex);
        PendingCv.wait(Lock,
                       [&] { return !Pending.empty() || ReaderDone; });
        if (Pending.empty())
          return; // ReaderDone and nothing left
        F = std::move(Pending.front());
        Pending.pop_front();
      }
      PendingCv.notify_all(); // window space freed
      Out << F.get() << "\n";
      Out.flush();
    }
  });

  std::string Line;
  while (!draining() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::future<std::string> F = submit(std::move(Line));
    Line.clear();
    {
      std::unique_lock<std::mutex> Lock(PendingMutex);
      PendingCv.wait(Lock, [&] { return Pending.size() < PendingBound; });
      Pending.push_back(std::move(F));
    }
    PendingCv.notify_all();
  }
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    ReaderDone = true;
  }
  PendingCv.notify_all();
  Writer.join();
  drain();
  return 0;
}

//===----------------------------------------------------------------------===//
// Unix-domain socket transport
//===----------------------------------------------------------------------===//

namespace {

/// Writes all of \p Data to \p Fd (MSG_NOSIGNAL: a vanished client must not
/// SIGPIPE the server). Returns false on error.
bool sendAll(int Fd, std::string_view Data) {
  while (!Data.empty()) {
    ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

} // namespace

int Server::serveUnixSocket(const std::string &Path,
                            const volatile int *StopFlag,
                            volatile int *ReloadFlag) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0)
    return 1;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Listen);
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str());
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 64) < 0) {
    ::close(Listen);
    return 1;
  }

  std::mutex ConnMutex;
  std::vector<int> OpenFds; // guarded by ConnMutex; -1 = closed
  std::vector<std::thread> ConnThreads;

  auto ConnectionLoop = [&](int Fd, size_t Slot) {
    std::string Buffer;
    char Chunk[65536];
    bool Alive = true;
    while (Alive) {
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        break;
      Buffer.append(Chunk, static_cast<size_t>(N));
      // A line that exceeds the request cap can never frame correctly
      // again; answer once and drop the connection.
      if (Buffer.find('\n') == std::string::npos &&
          Buffer.size() > Config.MaxRequestBytes) {
        sendAll(Fd, errorResponse("", "oversized",
                                  "request line exceeds the " +
                                      std::to_string(Config.MaxRequestBytes) +
                                      "-byte limit") +
                        "\n");
        break;
      }
      size_t Start = 0;
      for (size_t Nl = Buffer.find('\n', Start); Nl != std::string::npos;
           Nl = Buffer.find('\n', Start)) {
        std::string Line = Buffer.substr(Start, Nl - Start);
        Start = Nl + 1;
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        if (Line.empty())
          continue;
        std::string Response = submit(std::move(Line)).get();
        Response += "\n";
        if (!sendAll(Fd, Response)) {
          Alive = false;
          break;
        }
      }
      Buffer.erase(0, Start);
    }
    ::close(Fd);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    OpenFds[Slot] = -1;
  };

  for (;;) {
    if (draining() || (StopFlag && *StopFlag))
      break;
    if (ReloadFlag && *ReloadFlag) {
      // SIGHUP-driven hot swap, on the accept thread: workers keep
      // answering under the old snapshot for the duration of the load.
      *ReloadFlag = 0;
      std::string Err;
      if (reloadModel("", &Err)) {
        std::shared_ptr<const ModelState> M = model();
        std::fprintf(stderr,
                     "uspec-serve reloaded model generation=%llu specs=%zu "
                     "from %s\n",
                     static_cast<unsigned long long>(M->Generation),
                     M->Specs.Lines.size(), M->Source.c_str());
      } else {
        std::fprintf(stderr, "uspec-serve reload failed: %s\n", Err.c_str());
      }
    }
    pollfd Pfd{Listen, POLLIN, 0};
    // Poll interval from config (ServerConfig::AcceptPollMs): it bounds how
    // stale the drain/StopFlag check above can get, i.e. worst-case shutdown
    // latency while idle.
    int Ready = ::poll(&Pfd, 1, static_cast<int>(Config.AcceptPollMs));
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue;
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    size_t Slot = OpenFds.size();
    OpenFds.push_back(Fd);
    ConnThreads.emplace_back(ConnectionLoop, Fd, Slot);
  }

  ::close(Listen);
  ::unlink(Path.c_str());
  // Wake connection readers: after drain their submissions would only earn
  // `shutting_down` errors anyway.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : OpenFds)
      if (Fd >= 0)
        ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : ConnThreads)
    T.join();
  drain();
  return 0;
}
