//===- Server.h - Resident alias-query server ------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running query engine behind `uspec serve`. One server loads one
/// specification set (from a USPB artifact or spec text) and then answers
/// protocol requests (service/Protocol.h) until drained.
///
/// Shape:
///
///   submit(line) ──▶ bounded admission queue ──▶ worker pool ──▶ future
///
///  - Admission is non-blocking with explicit backpressure: a full queue
///    answers immediately with a structured `overloaded` error instead of
///    blocking the producer or growing without bound.
///  - Workers (plain std::threads, same idiom as support/ParallelFor.h) pop
///    requests, resolve them against the sharded fingerprint-keyed
///    AnalysisCache, and fulfil the response promise.
///  - Responses for a given (program, spec set, options) are byte-identical
///    to `uspec analyze --json` and independent of worker count: every
///    worker runs the same deterministic engine over private state, and
///    cache hits return payloads that same engine produced earlier.
///  - `shutdown` (or SIGTERM in the serve loops) starts a graceful drain:
///    queued and in-flight requests complete, later submissions get a
///    `shutting_down` error, then workers join.
///
/// Transports: serveStream (newline-delimited JSON over any iostream pair —
/// `uspec serve` uses stdin/stdout) and serveUnixSocket (SOCK_STREAM
/// Unix-domain socket, one reader thread per connection — `uspec query`
/// connects here). Both are thin shells over submit().
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SERVICE_SERVER_H
#define USPEC_SERVICE_SERVER_H

#include "service/Cache.h"
#include "service/Metrics.h"
#include "service/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace uspec {
namespace service {

struct ServerConfig {
  /// Worker threads; 0 = hardware concurrency.
  unsigned Workers = 0;
  /// Admission queue bound; a submit() beyond this answers `overloaded`.
  size_t QueueCapacity = 128;
  /// Result cache budget in analyzed programs.
  size_t CacheCapacity = 256;
  unsigned CacheShards = 8;
  /// Request lines longer than this are answered `oversized` unparsed.
  size_t MaxRequestBytes = 4 << 20;
  /// Default per-request deadline in ms (`serve --request-timeout`);
  /// 0 = none. A request's own `deadline_ms` takes precedence. Expired
  /// requests are answered with a structured `deadline_exceeded` error by
  /// the watchdog (or by the worker, whichever notices first) — the worker
  /// is never killed.
  unsigned RequestTimeoutMs = 0;
  /// Step budget per request for the bounded analysis (0 = unlimited);
  /// exhaustion degrades to a sound ⊤ payload with `"bounded":true`, which
  /// is never inserted into the cache.
  uint64_t MaxStepsPerRequest = 0;
  /// Accept-loop poll interval for serveUnixSocket, which bounds how long
  /// a drain/SIGTERM can go unnoticed while no client connects.
  unsigned AcceptPollMs = DefaultAcceptPollMs;
  /// Enables the test-only `test_block` verb (see Protocol.h). Tests use it
  /// to park workers deterministically and observe backpressure.
  bool EnableTestVerbs = false;
  /// Slow-request log threshold (`serve --slow-ms`): a request whose
  /// admission-to-answer wall time reaches this many milliseconds is logged
  /// as one structured `uspec-slow ...` line; 0 disables the log.
  unsigned SlowRequestMs = 0;
  /// Slow-request log destination; nullptr = stderr. Tests point this at a
  /// string stream.
  std::ostream *SlowLog = nullptr;
  /// Path the model was loaded from (artifact or spec text). The `reload`
  /// verb without an explicit "path", and the SIGHUP handler, re-read this
  /// file; "" disables path-less reloads.
  std::string ModelPath;

  static constexpr unsigned DefaultAcceptPollMs = 200;
};

/// One immutable model generation: the spec set requests are answered
/// under, plus the identity that keys the analysis cache and the
/// `model_generation` metric. Swapped wholesale by reload — a request takes
/// one shared snapshot at dispatch and never sees a torn mix of two
/// generations.
struct ModelState {
  ServiceSpecs Specs;
  /// Journal generation of the artifact (JournalLineage::Generation, else
  /// CorpusManifest::Generation; 0 for plain spec text).
  uint64_t Generation = 0;
  /// hashString over the canonical spec text — mixed into every cache key,
  /// so entries computed under another generation can never answer this
  /// one (cache non-bleed without an explicit flush).
  uint64_t Checksum = 0;
  /// Where the model came from (path or "inline"), for logs and errors.
  std::string Source;

  /// Stamps Checksum from the canonical text.
  static ModelState make(ServiceSpecs Specs, uint64_t Generation,
                         std::string Source);
};

/// Loads a ModelState from \p Path: USPB artifacts (checksum-validated by
/// the container open; generation from the lineage/manifest) or canonical
/// spec text. Fault site `service.reload.load` fires before the read (the
/// hot-swap failure-injection point). Returns nullopt and fills \p Err on
/// any failure.
std::optional<ModelState> loadModelState(const std::string &Path,
                                         std::string *Err);

class Server {
public:
  /// \p Specs is the canonical spec set (empty = API-unaware service);
  /// wrapped into an unversioned (generation 0) ModelState.
  Server(ServerConfig Config, ServiceSpecs Specs);

  /// Full form: serve \p Model, hot-swappable via reload.
  Server(ServerConfig Config, ModelState Model);

  /// Joins all workers (drains first if still running).
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Enqueues one request line; the future resolves to the response line
  /// (without trailing newline). Never blocks: when the queue is full the
  /// future is already resolved to an `overloaded` error, and after drain
  /// began to a `shutting_down` error.
  std::future<std::string> submit(std::string Line);

  /// submit() + wait — convenience for tests and benches.
  std::string handle(std::string Line);

  /// True once a shutdown request (or beginDrain) was seen.
  bool draining() const;

  /// Starts rejecting new work; queued and in-flight requests complete.
  void beginDrain();

  /// beginDrain() + waits for the queue to empty and all workers to exit.
  void drain();

  /// Opens the test_block gate (EnableTestVerbs); all parked workers
  /// resume.
  void releaseTestGate();

  /// Current stats payload (same bytes as the `stats` verb modulo the
  /// moving counters).
  std::string statsJson();

  /// Current Prometheus text exposition (the `metrics` verb returns this as
  /// a JSON string result).
  std::string metricsText();

  const ServiceMetrics &metrics() const { return Metrics; }
  ServiceMetrics &metrics() { return Metrics; }

  /// Snapshot of the serving model. Cheap (one mutex-guarded shared_ptr
  /// copy); holders keep the generation alive across a concurrent swap.
  std::shared_ptr<const ModelState> model() const;

  /// Atomically replaces the serving model. Requests admitted before the
  /// swap finish under the generation they snapshotted; later dispatches
  /// see the new one. Old cache entries are keyed by the old checksum and
  /// age out via LRU.
  void swapModel(ModelState NewModel);

  /// loadModelState(Path) + swapModel, serialized against concurrent
  /// reloads. On failure returns false with \p Err set and the old model
  /// untouched. Path "" means ServerConfig::ModelPath.
  bool reloadModel(std::string Path, std::string *Err);

  /// Serves newline-delimited JSON from \p In to \p Out until EOF or
  /// drain; responses are written in request order. Returns 0 on a clean
  /// drain.
  int serveStream(std::istream &In, std::ostream &Out);

  /// Binds \p Path (unlinking any stale socket file), accepts connections
  /// until drain or \p StopFlag becomes nonzero (a SIGTERM handler sets
  /// it), serving each connection's requests in order. A nonzero
  /// \p ReloadFlag (the CLI's SIGHUP handler sets it) is cleared and the
  /// model reloaded from ServerConfig::ModelPath on the accept thread —
  /// never a worker — so queries keep flowing during the load; a failed
  /// reload logs to stderr and the old model keeps serving. Returns 0 on a
  /// clean drain, 1 on socket errors.
  int serveUnixSocket(const std::string &Path,
                      const volatile int *StopFlag = nullptr,
                      volatile int *ReloadFlag = nullptr);

private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Per-request state shared between the worker executing it and the
  /// deadline watchdog. Whoever calls answer() first wins; the loser's
  /// response is dropped — the promise is set exactly once.
  struct JobState {
    std::string Id; ///< Best-effort raw id token (scanRequestId), for
                    ///< watchdog error responses.
    std::promise<std::string> Promise;
    std::atomic<bool> Answered{false};
    TimePoint Deadline{}; ///< Meaningful only when HasDeadline.
    bool HasDeadline = false;

    /// Resolves the promise once. Returns false if already answered.
    bool answer(std::string Response) {
      if (Answered.exchange(true, std::memory_order_acq_rel))
        return false;
      Promise.set_value(std::move(Response));
      return true;
    }
  };

  struct Job {
    std::string Line;
    std::shared_ptr<JobState> State;
    TimePoint Admitted;
  };

  /// What the slow-request log and the request trace span know about a
  /// request once it parsed; filled by handleRequest.
  struct RequestInfo {
    const char *Verb = "?"; ///< Protocol verb name ("?" before parse).
    std::string TraceId;
  };

  void workerLoop();
  void watchdogLoop();
  void watchJob(std::shared_ptr<JobState> State);
  /// Dying-worker path (injected `service.worker` fault): answers the
  /// in-flight request `internal`, spawns a replacement, and lets the
  /// thread exit.
  void replaceDeadWorker(Job &TheJob);
  std::string handleRequest(const std::string &Line, const Job &TheJob,
                            RequestInfo *Info = nullptr);
  std::string handleParsed(const Request &R, Budget *B);
  /// statsJson()'s view of the current model identity.
  ModelInfo modelInfo() const;
  /// Emits one structured `uspec-slow ...` line (ServerConfig::SlowLog,
  /// default stderr).
  void logSlowRequest(const RequestInfo &Info, const Job &TheJob,
                      double TotalSeconds, double QueueSeconds, bool Ok);

  /// Cache-or-analyze for verbs that carry a program, under one model
  /// generation snapshot \p M (cache keys mix M.Checksum). A Bounded
  /// result (budget exhausted mid-analysis) is returned but never cached.
  /// \p NoCache answers without mutating the cache (hits still served):
  /// the router's hedged requests carry it so non-owner replicas never
  /// adopt foreign keys.
  std::shared_ptr<const ProgramAnalysis>
  analysisFor(const ModelState &M, const std::string &Program,
              const std::string &Name, bool Coverage, bool NoCache,
              std::string *Error, Budget *B);

  ServerConfig Config;
  /// The serving model; read through model(), replaced by swapModel().
  /// shared_ptr-swapped under ModelMutex (not std::atomic_load — deprecated
  /// in C++20), so readers and the swapper never race on the pointer.
  std::shared_ptr<const ModelState> Model;
  mutable std::mutex ModelMutex;
  std::mutex ReloadMutex; ///< Serializes reloadModel() end to end.
  AnalysisCache Cache;
  ServiceMetrics Metrics;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;    ///< Signals workers: work or stop.
  std::condition_variable DrainedCv;  ///< Signals drain(): queue empty+idle.
  std::deque<Job> Queue;              ///< Guarded by QueueMutex.
  size_t InFlight = 0;                ///< Jobs popped, not yet finished.
  bool Draining = false;              ///< Reject new submissions.
  bool StopWorkers = false;           ///< Workers exit once queue empties.

  std::mutex GateMutex;
  std::condition_variable GateCv;
  bool GateOpen = false;

  std::mutex SlowLogMutex; ///< Serializes slow-request log lines.

  std::mutex WatchMutex;
  std::condition_variable WatchCv;
  std::vector<std::shared_ptr<JobState>> Watched; ///< Guarded by WatchMutex.
  bool StopWatchdog = false;                      ///< Guarded by WatchMutex.
  std::thread Watchdog;

  std::vector<std::thread> Workers; ///< Guarded by QueueMutex after start.
  unsigned EffectiveWorkers = 1;
};

} // namespace service
} // namespace uspec

#endif // USPEC_SERVICE_SERVER_H
