//===- Protocol.h - Alias-query service protocol ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol of `uspec serve` / `uspec query`,
/// plus the *shared analyze engine*: one deterministic function from
/// (program source, canonical spec text, options) to the analyze JSON
/// payload, used verbatim by both the service's `analyze` verb and the
/// `uspec analyze --json` CLI path so the two cannot drift — byte-identical
/// output is a tested contract, not a convention.
///
/// Requests are one JSON object per line:
///
///   {"id": 1, "verb": "analyze", "program": "<MiniLang source>",
///    "coverage": false}
///   {"verb": "alias", "program": "...", "a": "get", "b": "put"}
///   {"verb": "typestate", "program": "...", "check": "hasNext",
///    "use": "next"}
///   {"verb": "taint", "program": "...", "sources": ["source"],
///    "sinks": ["sink"], "sanitizers": []}
///   {"verb": "specs"}
///   {"verb": "cachekeys"}
///   {"verb": "stats"}
///   {"verb": "metrics"}
///   {"verb": "reload", "path": "model.uspb"}
///   {"verb": "shutdown"}
///
/// Responses echo the request id (when present) and carry either a result
/// or a structured error:
///
///   {"id": 1, "ok": true, "result": {...}}
///   {"id": 1, "ok": false, "error": {"kind": "bad_request",
///                                    "message": "..."}}
///
/// Requests may also carry `"trace_id": "<string>"`, an opaque client
/// correlation token echoed in the response envelope (after the id) and in
/// the server's slow-request log; requests without one get byte-identical
/// envelopes to the pre-trace protocol. The `metrics` verb returns the
/// server's Prometheus text exposition as a JSON string result.
///
/// Error kinds: bad_request (malformed JSON / missing fields), oversized
/// (request line over the configured byte cap — reported without an id,
/// the line is never parsed), parse_error (program diagnostics),
/// overloaded (admission queue full; no id for the same reason),
/// shutting_down (submitted after drain began), deadline_exceeded (the
/// request's `deadline_ms` — or the server's `--request-timeout` default —
/// elapsed before a result was produced; see DESIGN.md §10), reload_failed
/// (the `reload` verb could not load/validate the new model; the old model
/// keeps serving), internal (worker fault; the request is answered, the
/// pool replaces the worker).
///
/// Requests may carry `"deadline_ms": N` (milliseconds from admission).
/// Write the key canonically (no space before the colon): the server also
/// detects it by raw-byte scan at admission so that requests stuck in the
/// queue time out without being parsed.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SERVICE_PROTOCOL_H
#define USPEC_SERVICE_PROTOCOL_H

#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"
#include "specs/SpecIO.h"
#include "support/Budget.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace service {

//===----------------------------------------------------------------------===//
// Minimal JSON (no external dependencies)
//===----------------------------------------------------------------------===//

/// A parsed JSON value. Strings are unescaped; numbers are kept as doubles
/// (request ids are echoed from their raw text, so 64-bit ids survive).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind TheKind = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0;
  std::string StringValue;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isString() const { return TheKind == Kind::String; }
  bool isObject() const { return TheKind == Kind::Object; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isBool() const { return TheKind == Kind::Bool; }

  /// First member named \p Key, or nullptr.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). On failure returns false and describes the
/// problem in \p Err. Nesting is capped at \p MaxDepth.
bool parseJson(std::string_view Text, JsonValue &Out, std::string *Err,
               size_t MaxDepth = 64);

/// Appends \p S as a quoted, escaped JSON string literal.
void appendJsonString(std::string &Out, std::string_view S);

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

enum class Verb {
  Analyze,
  Alias,
  Specs,
  Typestate,
  Taint,
  Stats,
  Metrics, ///< Prometheus text exposition (as a JSON string result).
  Reload,  ///< Hot-swap the model from `path` (default: the path the server
           ///< loaded at startup). Zero-downtime: in-flight requests finish
           ///< under their admission-time generation.
  Shutdown,
  CacheKeys, ///< Exports the fingerprint keys resident in the result cache
             ///< (hottest first, capped) — the router's warm-cache handoff
             ///< uses it to verify a rejoined replica serves warm.
  TestBlock, ///< Test-only (ServerConfig::EnableTestVerbs): parks a worker
             ///< until Server::releaseTestGate(), for backpressure tests.
};

/// One decoded request.
struct Request {
  /// Raw JSON token of the "id" member ("" when absent), echoed verbatim in
  /// the response so numeric precision and string ids survive.
  std::string Id;
  Verb TheVerb = Verb::Stats;
  std::string Program; ///< MiniLang source (analyze/alias/typestate/taint).
  std::string Name;    ///< Optional program name for diagnostics.
  bool Coverage = false;
  /// `"no_cache":true` — answer without inserting into the result cache.
  /// The router's hedged requests carry it so a non-owner replica never
  /// pollutes its cache partition (cache *hits* still apply: hits are
  /// byte-identical by contract, only insertion is suppressed).
  bool NoCache = false;
  std::string A, B;        ///< alias: method names to test.
  std::string Check, Use;  ///< typestate protocol.
  std::vector<std::string> Sources, Sinks, Sanitizers; ///< taint policy.
  /// Per-request deadline in milliseconds from admission (0 = none; the
  /// server default from `serve --request-timeout` applies instead).
  uint64_t DeadlineMs = 0;
  /// Opaque client correlation token ("" when absent), echoed in the
  /// response envelope and the slow-request log.
  std::string TraceId;
  /// reload: artifact/spec path to load ("" = the server's startup path).
  std::string ModelPath;
};

/// Parses one request line. On failure returns false with a message in
/// \p Err; if the line was valid JSON with an id, the id is still returned
/// in \p Out.Id so the error response can echo it.
bool parseRequest(std::string_view Line, Request &Out, std::string *Err,
                  bool EnableTestVerbs = false);

/// Best-effort raw-byte scan of an unparsed request line for a
/// `"deadline_ms":N` member, so admission can register a watchdog deadline
/// without paying a JSON parse. Sound against false positives: inside a
/// JSON string a literal `"` must be escaped, so the exact byte sequence
/// `"deadline_ms":` cannot occur in string content. Misses non-canonical
/// spellings (`"deadline_ms" : N`) — the worker-side parse still applies
/// those cooperatively.
std::optional<uint64_t> scanDeadlineMs(std::string_view Line);

/// Best-effort raw-byte scan for the request's `"id":` token (same
/// soundness argument). Returns the raw token ("" when absent/unscannable)
/// for echoing in watchdog-issued error responses.
std::string scanRequestId(std::string_view Line);

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

/// `{"id":ID,"trace_id":"TID","ok":true,"result":PAYLOAD}` (id and
/// trace_id omitted when empty — a request without them gets the exact
/// pre-trace envelope bytes). The payload is embedded verbatim — clients
/// can recover it byte-exactly by stripping the fixed envelope.
std::string okResponse(const std::string &Id, std::string_view Payload,
                       std::string_view TraceId = {});

/// `{"kind":KIND,"message":MESSAGE}` — the error body, also printed by
/// `uspec analyze --json` on failure (inside `{"error":...}`).
std::string errorBody(std::string_view Kind, std::string_view Message);

/// `{"id":ID,"trace_id":"TID","ok":false,"error":BODY}` (id and trace_id
/// omitted when empty).
std::string errorResponse(const std::string &Id, std::string_view Kind,
                          std::string_view Message,
                          std::string_view TraceId = {});

//===----------------------------------------------------------------------===//
// The shared analyze engine
//===----------------------------------------------------------------------===//

/// The specification set a service (or one `analyze --json` run) answers
/// queries under, held in *canonical text form*: whatever the specs came
/// from (USPB artifact or text file), they are re-serialized through
/// serializeSpecs, so every consumer re-parses the same bytes and interning
/// order — a precondition of the byte-identity contract.
struct ServiceSpecs {
  std::string Text;                ///< Canonical serializeSpecs output.
  std::vector<std::string> Lines;  ///< One rendered spec per entry.

  bool empty() const { return Lines.empty(); }

  /// Canonicalizes an in-memory set.
  static ServiceSpecs fromSpecSet(const SpecSet &Specs,
                                  const StringInterner &Strings);

  /// Parses + re-canonicalizes user-supplied spec text. Returns nullopt on
  /// a malformed line (1-based number in \p BadLine).
  static std::optional<ServiceSpecs> fromText(std::string_view Text,
                                              size_t *BadLine = nullptr);
};

/// A parsed + lowered program with its own private interner — the unit of
/// work between admission and analysis. Self-contained: nothing in it
/// references server-global mutable state, so cache-miss handling never
/// contends on an interner lock.
struct ParsedProgram {
  StringInterner Strings;
  std::unique_ptr<IRProgram> Program;
  uint64_t Fingerprint = 0; ///< corpus/Dedup.h structural fingerprint.
};

/// Parses and lowers \p Source. On failure returns nullopt with rendered
/// diagnostics in \p Error.
std::optional<ParsedProgram> parseProgram(std::string_view Source,
                                          std::string_view Name,
                                          std::string *Error);

/// One fully analyzed program: the immutable value held by the service
/// cache. After construction it is only ever read (possibly by many worker
/// threads at once), never mutated.
struct ProgramAnalysis {
  StringInterner Strings;
  std::unique_ptr<IRProgram> Program;
  uint64_t Fingerprint = 0;
  SpecSet Specs;          ///< The canonical spec set, re-interned locally.
  bool Coverage = false;
  std::unique_ptr<AnalysisResult> Result;
  std::unique_ptr<EventGraph> Graph; ///< References *Result.
  std::string AnalyzeJson;           ///< Memoized analyze payload.
};

/// Runs the API-aware (or unaware, when \p Specs is empty) analysis over an
/// already parsed program and renders the analyze payload. Deterministic:
/// the result depends only on (program structure, Specs.Text, Coverage).
/// A non-null \p B bounds the analysis; an exhausted run yields a payload
/// with `"bounded":true` and ⊤ alias answers (never cached by the server).
std::shared_ptr<const ProgramAnalysis>
finishAnalysis(ParsedProgram &&Parsed, const ServiceSpecs &Specs,
               bool Coverage, Budget *B = nullptr);

/// parseProgram + finishAnalysis — the single entry point `uspec analyze
/// --json` uses; the server composes the two steps around cache probes.
std::shared_ptr<const ProgramAnalysis>
analyzeSource(std::string_view Source, std::string_view Name,
              const ServiceSpecs &Specs, bool Coverage, std::string *Error,
              Budget *B = nullptr);

/// Hard ceiling on one retry/backoff delay: base + jitter never exceeds
/// this, so a long retry loop (or a supervisor respawn schedule built on
/// retryDelayMs) waits at most ~1 s between attempts.
constexpr uint64_t MaxRetryDelayMs = 1000;

/// Deterministic exponential backoff with seeded jitter for `uspec query
/// --retries`: base 10 ms doubling per attempt (capped at 2^6), plus a
/// jitter of up to the base delay drawn from Rng(hash(Seed, Attempt)) — the
/// same (Seed, Attempt) always yields the same delay. The total is clamped
/// at MaxRetryDelayMs.
uint64_t retryDelayMs(unsigned Attempt, uint64_t Seed);

//===----------------------------------------------------------------------===//
// Payload serializers (one per verb; analyze's is memoized in
// ProgramAnalysis::AnalyzeJson)
//===----------------------------------------------------------------------===//

/// `{"specs":N,"api_aware":B,"coverage":B,"fingerprint":"hex","events":N,
///   "objects":N,"alias_pairs":[{"a":"C.m/1","a_site":S,"a_ctx":C,
///   "b":...},...],"alias_count":N}` — pairs in event-graph call-site
/// order, the same enumeration `uspec analyze` prints as text.
std::string analyzePayload(const ProgramAnalysis &PA);

/// May-alias between return values of call sites whose method *name*
/// matches \p A / \p B.
std::string aliasPayload(const ProgramAnalysis &PA, const std::string &A,
                         const std::string &B);

/// Type-state warnings under the service spec set.
std::string typestatePayload(const ProgramAnalysis &PA,
                             const std::string &Check,
                             const std::string &Use);

/// Taint findings under the service spec set.
std::string taintPayload(const ProgramAnalysis &PA,
                         const std::vector<std::string> &Sources,
                         const std::vector<std::string> &Sinks,
                         const std::vector<std::string> &Sanitizers);

/// The server's spec set: `{"count":N,"specs":["RetSame(...)", ...]}`.
std::string specsPayload(const ServiceSpecs &Specs);

} // namespace service
} // namespace uspec

#endif // USPEC_SERVICE_PROTOCOL_H
