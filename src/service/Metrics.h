//===- Metrics.h - Service request metrics ---------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate request metrics surfaced by the `stats` verb: counters are
/// lock-free atomics bumped on every request; latencies go into a fixed
/// ring of the most recent samples (bounded memory at any traffic level)
/// from which p50/p95 are computed on demand via support/Stats.h. Cache
/// hit/miss here is *request-level* (did this request skip analysis?),
/// independent of the cache's internal probe counters.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SERVICE_METRICS_H
#define USPEC_SERVICE_METRICS_H

#include "service/Cache.h"
#include "support/Stats.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace uspec {
namespace service {

class ServiceMetrics {
public:
  static constexpr size_t LatencyRingSize = 4096;

  ServiceMetrics() : Start(std::chrono::steady_clock::now()) {
    Ring.resize(LatencyRingSize, 0.0);
  }

  void recordAdmitted() { Received.fetch_add(1, std::memory_order_relaxed); }
  void recordOverloaded() {
    Overloaded.fetch_add(1, std::memory_order_relaxed);
  }
  void recordRejectedDraining() {
    RejectedDraining.fetch_add(1, std::memory_order_relaxed);
  }
  void recordCacheHit() { CacheHits.fetch_add(1, std::memory_order_relaxed); }
  void recordCacheMiss() {
    CacheMisses.fetch_add(1, std::memory_order_relaxed);
  }
  void recordDeadlineExceeded() {
    DeadlineExceeded.fetch_add(1, std::memory_order_relaxed);
  }
  void recordWorkerDeath() {
    WorkerDeaths.fetch_add(1, std::memory_order_relaxed);
  }

  /// Called once per completed request with its wall time.
  void recordCompleted(double Seconds, bool Ok) {
    (Ok ? Completed : Errored).fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(RingMutex);
    Ring[RingNext % LatencyRingSize] = Seconds;
    ++RingNext;
  }

  double uptimeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// One JSON object; \p Workers / \p QueueDepth / \p Cache describe the
  /// server's current shape.
  std::string json(unsigned Workers, size_t QueueDepth, size_t QueueCapacity,
                   const AnalysisCache::Stats &Cache) const {
    uint64_t Done = Completed.load(std::memory_order_relaxed);
    uint64_t Errs = Errored.load(std::memory_order_relaxed);
    uint64_t Hits = CacheHits.load(std::memory_order_relaxed);
    uint64_t Miss = CacheMisses.load(std::memory_order_relaxed);
    double Uptime = uptimeSeconds();
    double Qps = Uptime > 0 ? static_cast<double>(Done + Errs) / Uptime : 0;
    double HitRate =
        Hits + Miss ? static_cast<double>(Hits) / (Hits + Miss) : 0;

    std::vector<double> Lat;
    uint64_t Samples = 0;
    {
      std::lock_guard<std::mutex> Lock(RingMutex);
      Samples = RingNext;
      size_t N = RingNext < LatencyRingSize ? RingNext : LatencyRingSize;
      Lat.assign(Ring.begin(), Ring.begin() + N);
    }
    double P50 = percentile(Lat, 0.50) * 1e3;
    double P95 = percentile(Lat, 0.95) * 1e3;

    char Buf[896];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"uptime_seconds\":%.3f,\"workers\":%u,"
        "\"queue_depth\":%zu,\"queue_capacity\":%zu,"
        "\"requests\":{\"admitted\":%llu,\"completed\":%llu,"
        "\"errored\":%llu,\"overloaded\":%llu,\"rejected_draining\":%llu,"
        "\"deadline_exceeded\":%llu},"
        "\"worker_deaths\":%llu,"
        "\"qps\":%.3f,"
        "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
        "\"entries\":%zu,\"capacity\":%zu,\"evictions\":%llu},"
        "\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"samples\":%llu}}",
        Uptime, Workers, QueueDepth, QueueCapacity,
        static_cast<unsigned long long>(
            Received.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(Done),
        static_cast<unsigned long long>(Errs),
        static_cast<unsigned long long>(
            Overloaded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            RejectedDraining.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            DeadlineExceeded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            WorkerDeaths.load(std::memory_order_relaxed)),
        Qps, static_cast<unsigned long long>(Hits),
        static_cast<unsigned long long>(Miss), HitRate, Cache.Entries,
        Cache.Capacity, static_cast<unsigned long long>(Cache.Evictions),
        P50, P95, static_cast<unsigned long long>(Samples));
    return Buf;
  }

  uint64_t deadlineExceededCount() const {
    return DeadlineExceeded.load(std::memory_order_relaxed);
  }
  uint64_t workerDeathCount() const {
    return WorkerDeaths.load(std::memory_order_relaxed);
  }

  uint64_t overloadedCount() const {
    return Overloaded.load(std::memory_order_relaxed);
  }
  uint64_t cacheHitCount() const {
    return CacheHits.load(std::memory_order_relaxed);
  }
  uint64_t cacheMissCount() const {
    return CacheMisses.load(std::memory_order_relaxed);
  }
  uint64_t completedCount() const {
    return Completed.load(std::memory_order_relaxed) +
           Errored.load(std::memory_order_relaxed);
  }

  /// Median completed-request latency in seconds (0 with no samples);
  /// benches read this instead of re-parsing their own stats JSON.
  double p50LatencySeconds() const {
    std::vector<double> Lat;
    {
      std::lock_guard<std::mutex> Lock(RingMutex);
      size_t N = RingNext < LatencyRingSize ? RingNext : LatencyRingSize;
      Lat.assign(Ring.begin(), Ring.begin() + N);
    }
    return percentile(Lat, 0.50);
  }

private:
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> Received{0}, Completed{0}, Errored{0}, Overloaded{0},
      RejectedDraining{0}, CacheHits{0}, CacheMisses{0}, DeadlineExceeded{0},
      WorkerDeaths{0};
  mutable std::mutex RingMutex;
  std::vector<double> Ring;
  uint64_t RingNext = 0; ///< Guarded by RingMutex.
};

} // namespace service
} // namespace uspec

#endif // USPEC_SERVICE_METRICS_H
