//===- Metrics.h - Service request metrics ---------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate request metrics surfaced by the `stats` (JSON) and `metrics`
/// (Prometheus text exposition) verbs. Everything lives in a per-server
/// telemetry::MetricsRegistry: counters are lock-free atomics bumped on
/// every request; latencies go into log2-bucketed sharded histograms
/// (support/Telemetry.h) from which p50/p95 are computed on demand — exact
/// over the bucket-quantized samples, bounded memory at any traffic level,
/// and no lock on the record path (this replaced the former mutex+ring).
/// Cache hit/miss here is *request-level* (did this request skip
/// analysis?), independent of the cache's internal probe counters.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SERVICE_METRICS_H
#define USPEC_SERVICE_METRICS_H

#include "service/Cache.h"
#include "support/Telemetry.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace uspec {
namespace service {

/// Identity of the model generation currently serving, as surfaced by the
/// `stats`/`metrics` verbs (filled from the server's ModelState snapshot).
struct ModelInfo {
  uint64_t Generation = 0; ///< Journal generation (0 = unversioned specs).
  uint64_t Checksum = 0;   ///< Spec-text checksum mixed into cache keys.
  size_t Specs = 0;        ///< Number of specs in the serving set.
};

class ServiceMetrics {
public:
  ServiceMetrics()
      : Start(std::chrono::steady_clock::now()),
        StartUnix(std::chrono::duration<double>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count()),
        Received(Registry.counter("uspec_requests_admitted_total",
                                  "Requests admitted to the queue")),
        Completed(Registry.counter("uspec_requests_completed_total",
                                   "Requests answered ok")),
        Errored(Registry.counter("uspec_requests_errored_total",
                                 "Requests answered with an error")),
        Overloaded(Registry.counter("uspec_requests_overloaded_total",
                                    "Requests rejected: queue full")),
        RejectedDraining(
            Registry.counter("uspec_requests_rejected_draining_total",
                             "Requests rejected: server draining")),
        DeadlineExceeded(
            Registry.counter("uspec_requests_deadline_exceeded_total",
                             "Requests answered deadline_exceeded")),
        WorkerDeaths(Registry.counter("uspec_worker_deaths_total",
                                      "Workers replaced after a fault")),
        ModelReloads(Registry.counter("uspec_model_reloads_total",
                                      "Model hot-swaps applied")),
        CacheHits(Registry.counter("uspec_cache_hits_total",
                                   "Requests served from the analysis cache")),
        CacheMisses(Registry.counter("uspec_cache_misses_total",
                                     "Requests that ran a fresh analysis")),
        Latency(Registry.histogram("uspec_request_latency_seconds",
                                   "Wall time from dequeue to answer")),
        QueueWait(Registry.histogram("uspec_queue_wait_seconds",
                                     "Wall time from admission to dequeue")),
        Analyze(Registry.histogram("uspec_analyze_seconds",
                                   "Wall time of cache-miss analysis")) {}

  void recordAdmitted() { Received.inc(); }
  void recordOverloaded() { Overloaded.inc(); }
  void recordRejectedDraining() { RejectedDraining.inc(); }
  void recordCacheHit() { CacheHits.inc(); }
  void recordCacheMiss() { CacheMisses.inc(); }
  void recordDeadlineExceeded() { DeadlineExceeded.inc(); }
  void recordWorkerDeath() { WorkerDeaths.inc(); }
  void recordModelReload() { ModelReloads.inc(); }

  /// Called once per completed request with its wall time.
  void recordCompleted(double Seconds, bool Ok) {
    (Ok ? Completed : Errored).inc();
    Latency.recordSeconds(Seconds);
  }

  /// Admission-to-dequeue wall time of one request.
  void recordQueueWait(double Seconds) { QueueWait.recordSeconds(Seconds); }

  /// Wall time of one cache-miss analysis.
  void recordAnalyze(double Seconds) { Analyze.recordSeconds(Seconds); }

  double uptimeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// Process start as Unix seconds (wall clock, captured at construction) —
  /// the value behind uspec_process_start_time_seconds, which fleet fan-out
  /// min-aggregates to the oldest process in the fleet.
  double startTimeUnixSeconds() const { return StartUnix; }

  /// One JSON object; \p Workers / \p QueueDepth / \p Cache describe the
  /// server's current shape. Built on std::string — never truncates,
  /// however large the counters grow.
  std::string json(unsigned Workers, size_t QueueDepth, size_t QueueCapacity,
                   const AnalysisCache::Stats &Cache,
                   const ModelInfo &Model = {}) const {
    uint64_t Done = Completed.value();
    uint64_t Errs = Errored.value();
    uint64_t Hits = CacheHits.value();
    uint64_t Miss = CacheMisses.value();
    double Uptime = uptimeSeconds();
    double Qps = Uptime > 0 ? static_cast<double>(Done + Errs) / Uptime : 0;
    double HitRate =
        Hits + Miss ? static_cast<double>(Hits) / (Hits + Miss) : 0;

    telemetry::HistogramSnapshot Lat = Latency.snapshot();
    double P50 = Lat.percentileSeconds(0.50) * 1e3;
    double P95 = Lat.percentileSeconds(0.95) * 1e3;

    std::string Out;
    Out.reserve(512);
    char Buf[160];
    auto Append = [&](const char *Fmt, auto Value) {
      std::snprintf(Buf, sizeof(Buf), Fmt, Value);
      Out += Buf;
    };
    auto AppendU64 = [&](const char *Prefix, uint64_t Value) {
      Out += Prefix;
      Append("%llu", static_cast<unsigned long long>(Value));
    };
    Append("{\"uptime_seconds\":%.3f", Uptime);
    Append(",\"uptime_s\":%.3f", Uptime);
    Append(",\"start_time_unix\":%.3f", StartUnix);
    Append(",\"workers\":%u", Workers);
    Append(",\"queue_depth\":%zu", QueueDepth);
    Append(",\"queue_capacity\":%zu", QueueCapacity);
    AppendU64(",\"requests\":{\"admitted\":", Received.value());
    AppendU64(",\"completed\":", Done);
    AppendU64(",\"errored\":", Errs);
    AppendU64(",\"overloaded\":", Overloaded.value());
    AppendU64(",\"rejected_draining\":", RejectedDraining.value());
    AppendU64(",\"deadline_exceeded\":", DeadlineExceeded.value());
    AppendU64("},\"worker_deaths\":", WorkerDeaths.value());
    Append(",\"qps\":%.3f", Qps);
    AppendU64(",\"cache\":{\"hits\":", Hits);
    AppendU64(",\"misses\":", Miss);
    Append(",\"hit_rate\":%.4f", HitRate);
    Append(",\"entries\":%zu", Cache.Entries);
    Append(",\"capacity\":%zu", Cache.Capacity);
    AppendU64(",\"evictions\":", Cache.Evictions);
    AppendU64("},\"model\":{\"generation\":", Model.Generation);
    {
      char Hex[24];
      std::snprintf(Hex, sizeof(Hex), "%016llx",
                    static_cast<unsigned long long>(Model.Checksum));
      Out += ",\"checksum\":\"";
      Out += Hex;
      Out += "\"";
    }
    Append(",\"specs\":%zu", Model.Specs);
    AppendU64(",\"reloads\":", ModelReloads.value());
    Append("},\"latency_ms\":{\"p50\":%.3f", P50);
    Append(",\"p95\":%.3f", P95);
    AppendU64(",\"samples\":", Lat.Count);
    Out += "}}";
    return Out;
  }

  /// Prometheus text exposition of every registry series plus the server
  /// shape (workers, queue, cache occupancy) as computed gauges.
  std::string prometheus(unsigned Workers, size_t QueueDepth,
                         size_t QueueCapacity,
                         const AnalysisCache::Stats &Cache,
                         const ModelInfo &Model = {}) const {
    std::string Out = Registry.renderPrometheus();
    using telemetry::appendPromCounter;
    using telemetry::appendPromGauge;
    appendPromGauge(Out, "uspec_uptime_seconds", "Server uptime",
                    uptimeSeconds());
    appendPromGauge(Out, "uspec_process_start_time_seconds",
                    "Process start, Unix seconds", StartUnix);
    appendPromGauge(Out, "uspec_workers", "Worker pool size", Workers);
    appendPromGauge(Out, "uspec_queue_depth", "Requests currently queued",
                    static_cast<double>(QueueDepth));
    appendPromGauge(Out, "uspec_queue_capacity", "Admission queue capacity",
                    static_cast<double>(QueueCapacity));
    appendPromGauge(Out, "uspec_cache_entries", "Analyses resident in cache",
                    static_cast<double>(Cache.Entries));
    appendPromGauge(Out, "uspec_cache_capacity", "Cache entry capacity",
                    static_cast<double>(Cache.Capacity));
    appendPromCounter(Out, "uspec_cache_evictions_total",
                      "Cache entries evicted",
                      static_cast<double>(Cache.Evictions));
    appendPromGauge(Out, "uspec_model_generation",
                    "Journal generation of the serving model",
                    static_cast<double>(Model.Generation));
    appendPromGauge(Out, "uspec_model_specs", "Specs in the serving set",
                    static_cast<double>(Model.Specs));
    return Out;
  }

  uint64_t deadlineExceededCount() const { return DeadlineExceeded.value(); }
  uint64_t workerDeathCount() const { return WorkerDeaths.value(); }
  uint64_t modelReloadCount() const { return ModelReloads.value(); }
  uint64_t overloadedCount() const { return Overloaded.value(); }
  uint64_t cacheHitCount() const { return CacheHits.value(); }
  uint64_t cacheMissCount() const { return CacheMisses.value(); }
  uint64_t completedCount() const {
    return Completed.value() + Errored.value();
  }

  /// Median completed-request latency in seconds (0 with no samples);
  /// benches read this instead of re-parsing their own stats JSON.
  double p50LatencySeconds() const {
    return Latency.snapshot().percentileSeconds(0.50);
  }

  /// The underlying registry (tests drive counters directly through it).
  telemetry::MetricsRegistry &registry() { return Registry; }

private:
  telemetry::MetricsRegistry Registry;
  std::chrono::steady_clock::time_point Start;
  double StartUnix;
  telemetry::Counter &Received, &Completed, &Errored, &Overloaded,
      &RejectedDraining, &DeadlineExceeded, &WorkerDeaths, &ModelReloads,
      &CacheHits, &CacheMisses;
  telemetry::ShardedHistogram &Latency, &QueueWait, &Analyze;
};

} // namespace service
} // namespace uspec

#endif // USPEC_SERVICE_METRICS_H
