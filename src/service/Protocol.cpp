//===- Protocol.cpp - Alias-query service protocol ------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "clients/Taint.h"
#include "clients/Typestate.h"
#include "corpus/Dedup.h"
#include "lang/Diagnostics.h"
#include "support/Hashing.h"
#include "support/JsonEscape.h"
#include "support/Random.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace uspec;
using namespace uspec::service;

//===----------------------------------------------------------------------===//
// JSON parsing
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string_view. Positions are byte
/// offsets for error messages; depth is capped by the caller.
class JsonParser {
public:
  JsonParser(std::string_view Text, size_t MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  bool parse(JsonValue &Out, std::string *Err) {
    if (!parseValue(Out, 0)) {
      if (Err)
        *Err = Error.empty() ? "malformed JSON" : Error;
      return false;
    }
    skipSpace();
    if (Pos != Text.size()) {
      if (Err)
        *Err = "trailing garbage at byte " + std::to_string(Pos);
      return false;
    }
    return true;
  }

private:
  std::string_view Text;
  size_t MaxDepth;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, size_t Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out, Depth);
    if (C == '[')
      return parseArray(Out, Depth);
    if (C == '"') {
      Out.TheKind = JsonValue::Kind::String;
      return parseString(Out.StringValue);
    }
    if (literal("true")) {
      Out.TheKind = JsonValue::Kind::Bool;
      Out.BoolValue = true;
      return true;
    }
    if (literal("false")) {
      Out.TheKind = JsonValue::Kind::Bool;
      Out.BoolValue = false;
      return true;
    }
    if (literal("null")) {
      Out.TheKind = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(Out);
  }

  bool parseObject(JsonValue &Out, size_t Depth) {
    Out.TheKind = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (consume('}'))
      return true;
    for (;;) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':'");
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Value));
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out, size_t Depth) {
    Out.TheKind = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Item;
      if (!parseValue(Item, Depth + 1))
        return false;
      Out.Items.push_back(std::move(Item));
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // UTF-16 surrogate pair → one code point.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          unsigned Low = 0;
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            if (!parseHex4(Low))
              return false;
          }
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            return fail("invalid surrogate pair");
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("stray low surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("unexpected character");
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || !std::isfinite(Value)) {
      Pos = Start;
      return fail("malformed number");
    }
    Out.TheKind = JsonValue::Kind::Number;
    Out.NumberValue = Value;
    return true;
  }
};

} // namespace

bool service::parseJson(std::string_view Text, JsonValue &Out,
                        std::string *Err, size_t MaxDepth) {
  return JsonParser(Text, MaxDepth).parse(Out, Err);
}

void service::appendJsonString(std::string &Out, std::string_view S) {
  appendJsonQuoted(Out, S); // the shared support/JsonEscape.h escaper
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

namespace {

/// Re-serializes the "id" member so the response echoes exactly what the
/// client sent (numbers keep their raw text semantics via %.17g only when
/// integral-precision round-trip is safe; strings re-escape).
std::string renderId(const JsonValue &Id) {
  std::string Out;
  switch (Id.TheKind) {
  case JsonValue::Kind::String:
    appendJsonString(Out, Id.StringValue);
    return Out;
  case JsonValue::Kind::Number: {
    double V = Id.NumberValue;
    if (std::nearbyint(V) == V && std::fabs(V) < 9.0e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
      return Buf;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    return Buf;
  }
  default:
    return std::string();
  }
}

bool stringField(const JsonValue &Obj, std::string_view Key, std::string &Out,
                 std::string *Err) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    if (Err)
      *Err = "field \"" + std::string(Key) + "\" must be a string";
    return false;
  }
  Out = V->StringValue;
  return true;
}

bool stringListField(const JsonValue &Obj, std::string_view Key,
                     std::vector<std::string> &Out, std::string *Err) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isArray()) {
    if (Err)
      *Err = "field \"" + std::string(Key) + "\" must be an array of strings";
    return false;
  }
  for (const JsonValue &Item : V->Items) {
    if (!Item.isString()) {
      if (Err)
        *Err =
            "field \"" + std::string(Key) + "\" must be an array of strings";
      return false;
    }
    Out.push_back(Item.StringValue);
  }
  return true;
}

} // namespace

bool service::parseRequest(std::string_view Line, Request &Out,
                           std::string *Err, bool EnableTestVerbs) {
  JsonValue Root;
  if (!parseJson(Line, Root, Err))
    return false;
  if (!Root.isObject()) {
    if (Err)
      *Err = "request must be a JSON object";
    return false;
  }
  if (const JsonValue *Id = Root.find("id"))
    Out.Id = renderId(*Id);

  const JsonValue *VerbV = Root.find("verb");
  if (!VerbV || !VerbV->isString()) {
    if (Err)
      *Err = "missing string field \"verb\"";
    return false;
  }
  const std::string &Name = VerbV->StringValue;
  bool NeedsProgram = false;
  if (Name == "analyze") {
    Out.TheVerb = Verb::Analyze;
    NeedsProgram = true;
  } else if (Name == "alias") {
    Out.TheVerb = Verb::Alias;
    NeedsProgram = true;
  } else if (Name == "specs") {
    Out.TheVerb = Verb::Specs;
  } else if (Name == "typestate") {
    Out.TheVerb = Verb::Typestate;
    NeedsProgram = true;
  } else if (Name == "taint") {
    Out.TheVerb = Verb::Taint;
    NeedsProgram = true;
  } else if (Name == "stats") {
    Out.TheVerb = Verb::Stats;
  } else if (Name == "metrics") {
    Out.TheVerb = Verb::Metrics;
  } else if (Name == "reload") {
    Out.TheVerb = Verb::Reload;
  } else if (Name == "shutdown") {
    Out.TheVerb = Verb::Shutdown;
  } else if (Name == "cachekeys") {
    Out.TheVerb = Verb::CacheKeys;
  } else if (EnableTestVerbs && Name == "test_block") {
    Out.TheVerb = Verb::TestBlock;
  } else {
    if (Err)
      *Err = "unknown verb \"" + Name + "\"";
    return false;
  }

  if (!stringField(Root, "program", Out.Program, Err) ||
      !stringField(Root, "name", Out.Name, Err) ||
      !stringField(Root, "a", Out.A, Err) ||
      !stringField(Root, "b", Out.B, Err) ||
      !stringField(Root, "check", Out.Check, Err) ||
      !stringField(Root, "use", Out.Use, Err) ||
      !stringListField(Root, "sources", Out.Sources, Err) ||
      !stringListField(Root, "sinks", Out.Sinks, Err) ||
      !stringListField(Root, "sanitizers", Out.Sanitizers, Err) ||
      !stringField(Root, "trace_id", Out.TraceId, Err) ||
      !stringField(Root, "path", Out.ModelPath, Err))
    return false;
  if (const JsonValue *Cov = Root.find("coverage")) {
    if (!Cov->isBool()) {
      if (Err)
        *Err = "field \"coverage\" must be a boolean";
      return false;
    }
    Out.Coverage = Cov->BoolValue;
  }
  if (const JsonValue *Nc = Root.find("no_cache")) {
    if (!Nc->isBool()) {
      if (Err)
        *Err = "field \"no_cache\" must be a boolean";
      return false;
    }
    Out.NoCache = Nc->BoolValue;
  }
  if (const JsonValue *Dl = Root.find("deadline_ms")) {
    if (Dl->TheKind != JsonValue::Kind::Number || Dl->NumberValue < 0 ||
        std::floor(Dl->NumberValue) != Dl->NumberValue) {
      if (Err)
        *Err = "field \"deadline_ms\" must be a non-negative integer";
      return false;
    }
    Out.DeadlineMs = static_cast<uint64_t>(Dl->NumberValue);
  }
  if (NeedsProgram && Out.Program.empty()) {
    if (Err)
      *Err = "verb \"" + Name + "\" requires a non-empty \"program\" field";
    return false;
  }
  if (Out.TheVerb == Verb::Alias && (Out.A.empty() || Out.B.empty())) {
    if (Err)
      *Err = "verb \"alias\" requires \"a\" and \"b\" method names";
    return false;
  }
  if (Out.TheVerb == Verb::Typestate && Out.Use.empty()) {
    if (Err)
      *Err = "verb \"typestate\" requires a \"use\" method name";
    return false;
  }
  return true;
}

std::optional<uint64_t> service::scanDeadlineMs(std::string_view Line) {
  // `"` inside JSON string content must be escaped, so this byte sequence
  // can only be the member key itself.
  static constexpr std::string_view Key = "\"deadline_ms\":";
  size_t Pos = Line.find(Key);
  if (Pos == std::string_view::npos)
    return std::nullopt;
  Pos += Key.size();
  while (Pos < Line.size() && (Line[Pos] == ' ' || Line[Pos] == '\t'))
    ++Pos;
  uint64_t Value = 0;
  size_t Digits = 0;
  while (Pos < Line.size() && Line[Pos] >= '0' && Line[Pos] <= '9') {
    Value = Value * 10 + static_cast<uint64_t>(Line[Pos] - '0');
    ++Pos;
    if (++Digits > 15) // absurd deadline; let the real parser reject it
      return std::nullopt;
  }
  if (Digits == 0)
    return std::nullopt;
  return Value;
}

std::string service::scanRequestId(std::string_view Line) {
  static constexpr std::string_view Key = "\"id\":";
  size_t Pos = Line.find(Key);
  if (Pos == std::string_view::npos)
    return "";
  Pos += Key.size();
  while (Pos < Line.size() && (Line[Pos] == ' ' || Line[Pos] == '\t'))
    ++Pos;
  if (Pos >= Line.size())
    return "";
  if (Line[Pos] == '"') {
    // String id: take the quoted token through the closing unescaped quote.
    size_t End = Pos + 1;
    while (End < Line.size() && Line[End] != '"') {
      if (Line[End] == '\\')
        ++End;
      ++End;
    }
    if (End >= Line.size())
      return "";
    return std::string(Line.substr(Pos, End - Pos + 1));
  }
  // Numeric id: the raw token up to a delimiter.
  size_t End = Pos;
  while (End < Line.size() && Line[End] != ',' && Line[End] != '}' &&
         Line[End] != ' ' && Line[End] != '\t')
    ++End;
  std::string Token(Line.substr(Pos, End - Pos));
  // Only accept something that looks like a JSON number; anything else is
  // safer echoed as nothing than as garbage.
  if (Token.empty() ||
      Token.find_first_not_of("-+.eE0123456789") != std::string::npos)
    return "";
  return Token;
}

uint64_t service::retryDelayMs(unsigned Attempt, uint64_t Seed) {
  const uint64_t Base = 10;
  uint64_t Exp = Attempt < 6 ? Attempt : 6;
  uint64_t Delay = Base << Exp;
  Rng Jitter(hashValues(Seed, static_cast<uint64_t>(Attempt)));
  uint64_t Total = Delay + Jitter.below(Delay);
  return Total < MaxRetryDelayMs ? Total : MaxRetryDelayMs;
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

namespace {

/// The shared `{"id":...,"trace_id":...,` envelope prefix; both members are
/// omitted when empty so untraced requests keep their pre-trace bytes.
void appendEnvelopePrefix(std::string &Out, const std::string &Id,
                          std::string_view TraceId) {
  Out += "{";
  if (!Id.empty()) {
    Out += "\"id\":";
    Out += Id;
    Out += ",";
  }
  if (!TraceId.empty()) {
    Out += "\"trace_id\":";
    appendJsonString(Out, TraceId);
    Out += ",";
  }
}

} // namespace

std::string service::okResponse(const std::string &Id,
                                std::string_view Payload,
                                std::string_view TraceId) {
  std::string Out;
  Out.reserve(Payload.size() + Id.size() + TraceId.size() + 48);
  appendEnvelopePrefix(Out, Id, TraceId);
  Out += "\"ok\":true,\"result\":";
  Out += Payload;
  Out += "}";
  return Out;
}

std::string service::errorBody(std::string_view Kind,
                               std::string_view Message) {
  std::string Out = "{\"kind\":";
  appendJsonString(Out, Kind);
  Out += ",\"message\":";
  appendJsonString(Out, Message);
  Out += "}";
  return Out;
}

std::string service::errorResponse(const std::string &Id,
                                   std::string_view Kind,
                                   std::string_view Message,
                                   std::string_view TraceId) {
  std::string Out;
  appendEnvelopePrefix(Out, Id, TraceId);
  Out += "\"ok\":false,\"error\":";
  Out += errorBody(Kind, Message);
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// The shared analyze engine
//===----------------------------------------------------------------------===//

ServiceSpecs ServiceSpecs::fromSpecSet(const SpecSet &Specs,
                                       const StringInterner &Strings) {
  ServiceSpecs Out;
  Out.Text = serializeSpecs(Specs, Strings);
  for (const Spec &S : Specs.all())
    Out.Lines.push_back(S.str(Strings));
  return Out;
}

std::optional<ServiceSpecs> ServiceSpecs::fromText(std::string_view Text,
                                                   size_t *BadLine) {
  StringInterner Strings;
  size_t ErrorLine = 0;
  SpecSet Specs = parseSpecs(Text, Strings, &ErrorLine);
  if (ErrorLine) {
    if (BadLine)
      *BadLine = ErrorLine;
    return std::nullopt;
  }
  return fromSpecSet(Specs, Strings);
}

std::optional<ParsedProgram> service::parseProgram(std::string_view Source,
                                                   std::string_view Name,
                                                   std::string *Error) {
  ParsedProgram Out;
  DiagnosticSink Diags;
  std::string DiagName(Name.empty() ? std::string_view("<query>") : Name);
  auto P = parseAndLower(Source, DiagName, Out.Strings, Diags);
  if (!P) {
    if (Error)
      *Error = Diags.render();
    return std::nullopt;
  }
  Out.Program = std::make_unique<IRProgram>(std::move(*P));
  Out.Fingerprint = programFingerprint(*Out.Program);
  return Out;
}

std::shared_ptr<const ProgramAnalysis>
service::finishAnalysis(ParsedProgram &&Parsed, const ServiceSpecs &Specs,
                        bool Coverage, Budget *B) {
  auto PA = std::make_shared<ProgramAnalysis>();
  PA->Strings = std::move(Parsed.Strings);
  PA->Program = std::move(Parsed.Program);
  PA->Fingerprint = Parsed.Fingerprint;
  PA->Coverage = Coverage;
  // Canonical spec text parses into the program's private interner: both the
  // CLI and every service worker intern the same byte sequence after the
  // same program, so symbol numbering — and with it every downstream
  // iteration — is reproduced exactly.
  size_t ErrorLine = 0;
  PA->Specs = parseSpecs(Specs.Text, PA->Strings, &ErrorLine);
  (void)ErrorLine; // canonical text cannot be malformed
  AnalysisOptions Options;
  Options.ApiAware = !PA->Specs.empty();
  Options.Specs = &PA->Specs;
  Options.CoverageExtension = Coverage;
  Options.StepBudget = B;
  PA->Result = std::make_unique<AnalysisResult>(
      analyzeProgram(*PA->Program, PA->Strings, Options));
  PA->Graph = std::make_unique<EventGraph>(EventGraph::build(*PA->Result));
  PA->AnalyzeJson = analyzePayload(*PA);
  return PA;
}

std::shared_ptr<const ProgramAnalysis>
service::analyzeSource(std::string_view Source, std::string_view Name,
                       const ServiceSpecs &Specs, bool Coverage,
                       std::string *Error, Budget *B) {
  auto Parsed = parseProgram(Source, Name, Error);
  if (!Parsed)
    return nullptr;
  return finishAnalysis(std::move(*Parsed), Specs, Coverage, B);
}

//===----------------------------------------------------------------------===//
// Payload serializers
//===----------------------------------------------------------------------===//

namespace {

void appendSize(std::string &Out, size_t N) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%zu", N);
  Out += Buf;
}

void appendU32(std::string &Out, uint32_t N) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu32, N);
  Out += Buf;
}

void appendHex64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"%016" PRIx64 "\"", V);
  Out += Buf;
}

} // namespace

std::string service::analyzePayload(const ProgramAnalysis &PA) {
  const AnalysisResult &R = *PA.Result;
  const EventGraph &G = *PA.Graph;
  const std::vector<CallSite> &Sites = G.callSites();

  std::string Out = "{\"specs\":";
  appendSize(Out, PA.Specs.size());
  Out += ",\"api_aware\":";
  Out += PA.Specs.empty() ? "false" : "true";
  Out += ",\"coverage\":";
  Out += PA.Coverage ? "true" : "false";
  Out += ",\"fingerprint\":";
  appendHex64(Out, PA.Fingerprint);
  Out += ",\"events\":";
  appendSize(Out, R.Events.size());
  Out += ",\"objects\":";
  appendSize(Out, R.Objects.size());
  Out += ",\"alias_pairs\":[";
  size_t Pairs = 0;
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t J = I + 1; J < Sites.size(); ++J) {
      if (Sites[I].Ret == InvalidEvent || Sites[J].Ret == InvalidEvent)
        continue;
      if (!R.retMayAlias(Sites[I].Ret, Sites[J].Ret))
        continue;
      if (Pairs)
        Out += ",";
      Out += "{\"a\":";
      appendJsonString(Out, Sites[I].Method.str(PA.Strings));
      Out += ",\"a_site\":";
      appendU32(Out, Sites[I].Site);
      Out += ",\"a_ctx\":";
      appendU32(Out, Sites[I].Ctx);
      Out += ",\"b\":";
      appendJsonString(Out, Sites[J].Method.str(PA.Strings));
      Out += ",\"b_site\":";
      appendU32(Out, Sites[J].Site);
      Out += ",\"b_ctx\":";
      appendU32(Out, Sites[J].Ctx);
      Out += "}";
      ++Pairs;
    }
  }
  Out += "],\"alias_count\":";
  appendSize(Out, Pairs);
  // Appended only on budget exhaustion, so unbounded payloads stay
  // byte-identical to the pre-robustness format.
  if (R.Bounded)
    Out += ",\"bounded\":true";
  Out += "}";
  return Out;
}

std::string service::aliasPayload(const ProgramAnalysis &PA,
                                  const std::string &A,
                                  const std::string &B) {
  const AnalysisResult &R = *PA.Result;
  const std::vector<CallSite> &Sites = PA.Graph->callSites();
  // Const name resolution: a name that never occurs in the program cannot
  // match any call site.
  std::optional<Symbol> SymA = PA.Strings.lookup(A);
  std::optional<Symbol> SymB = PA.Strings.lookup(B);

  std::string Out = "{\"a\":";
  appendJsonString(Out, A);
  Out += ",\"b\":";
  appendJsonString(Out, B);
  size_t CountA = 0, CountB = 0, Pairs = 0;
  std::string PairsJson;
  for (size_t I = 0; I < Sites.size(); ++I) {
    bool IsA = SymA && Sites[I].Method.Name == *SymA;
    bool IsB = SymB && Sites[I].Method.Name == *SymB;
    CountA += IsA;
    CountB += IsB;
    if (!IsA || Sites[I].Ret == InvalidEvent)
      continue;
    for (size_t J = 0; J < Sites.size(); ++J) {
      if (I == J || !SymB || Sites[J].Method.Name != *SymB ||
          Sites[J].Ret == InvalidEvent)
        continue;
      if (!R.retMayAlias(Sites[I].Ret, Sites[J].Ret))
        continue;
      if (Pairs)
        PairsJson += ",";
      PairsJson += "[";
      appendU32(PairsJson, Sites[I].Site);
      PairsJson += ",";
      appendU32(PairsJson, Sites[J].Site);
      PairsJson += "]";
      ++Pairs;
    }
  }
  Out += ",\"a_sites\":";
  appendSize(Out, CountA);
  Out += ",\"b_sites\":";
  appendSize(Out, CountB);
  Out += ",\"may_alias\":";
  Out += Pairs ? "true" : "false";
  Out += ",\"pairs\":[";
  Out += PairsJson;
  Out += "]";
  if (R.Bounded)
    Out += ",\"bounded\":true";
  Out += "}";
  return Out;
}

std::string service::typestatePayload(const ProgramAnalysis &PA,
                                      const std::string &Check,
                                      const std::string &Use) {
  TypestateProtocol Proto;
  Proto.CheckMethod = Check;
  Proto.UseMethod = Use;
  std::vector<TypestateWarning> Warnings =
      checkTypestate(*PA.Result, PA.Strings, Proto);
  std::string Out = "{\"check\":";
  appendJsonString(Out, Check);
  Out += ",\"use\":";
  appendJsonString(Out, Use);
  Out += ",\"warnings\":[";
  for (size_t I = 0; I < Warnings.size(); ++I) {
    if (I)
      Out += ",";
    Out += "{\"site\":";
    appendU32(Out, Warnings[I].Site);
    Out += ",\"ctx\":";
    appendU32(Out, Warnings[I].Ctx);
    Out += "}";
  }
  Out += "],\"count\":";
  appendSize(Out, Warnings.size());
  Out += "}";
  return Out;
}

std::string
service::taintPayload(const ProgramAnalysis &PA,
                      const std::vector<std::string> &Sources,
                      const std::vector<std::string> &Sinks,
                      const std::vector<std::string> &Sanitizers) {
  TaintConfig Config;
  Config.Sources.insert(Sources.begin(), Sources.end());
  Config.Sinks.insert(Sinks.begin(), Sinks.end());
  Config.Sanitizers.insert(Sanitizers.begin(), Sanitizers.end());
  std::vector<TaintFinding> Findings =
      checkTaint(*PA.Result, ResolvedTaintConfig::resolve(Config, PA.Strings));
  std::string Out = "{\"findings\":[";
  for (size_t I = 0; I < Findings.size(); ++I) {
    if (I)
      Out += ",";
    Out += "{\"source_site\":";
    appendU32(Out, Findings[I].SourceSite);
    Out += ",\"sink_site\":";
    appendU32(Out, Findings[I].SinkSite);
    Out += "}";
  }
  Out += "],\"count\":";
  appendSize(Out, Findings.size());
  Out += "}";
  return Out;
}

std::string service::specsPayload(const ServiceSpecs &Specs) {
  std::string Out = "{\"count\":";
  appendSize(Out, Specs.Lines.size());
  Out += ",\"specs\":[";
  for (size_t I = 0; I < Specs.Lines.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonString(Out, Specs.Lines[I]);
  }
  Out += "]}";
  return Out;
}
