//===- Cache.h - Sharded LRU cache of analyzed programs --------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's result cache. Two maps per shard, both bounded:
///
///  - fingerprint → ProgramAnalysis: the real cache, keyed by the
///    *structural* fingerprint of corpus/Dedup.h (mixed with the analysis
///    options), LRU-evicted at the configured capacity. Everything the
///    fingerprint does not pin (variable names, whitespace, comments) also
///    cannot appear in any response payload, so serving a hit for a
///    textually different but structurally identical program is
///    byte-exact.
///  - source-hash → fingerprint: a memo so a byte-identical resubmission
///    skips parse/lower too, not just points-to. A stale memo entry (its
///    fingerprint was evicted) is harmless — the probe misses and the
///    program is re-analyzed.
///
/// Shards are independently locked; the shard of a key is derived from its
/// high bits so both maps spread evenly. Entries are immutable
/// shared_ptr<const ProgramAnalysis>, so a hit handed to one worker stays
/// valid even if another worker evicts it a microsecond later.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SERVICE_CACHE_H
#define USPEC_SERVICE_CACHE_H

#include "service/Protocol.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace uspec {
namespace service {

class AnalysisCache {
public:
  /// \p Capacity is the total entry budget across all shards (min 1 per
  /// shard); \p Shards is clamped to [1, 64].
  AnalysisCache(size_t Capacity, unsigned Shards);

  /// Probe by source-hash key (hash of the raw request program text mixed
  /// with the analysis options). Returns the entry and bumps LRU recency.
  std::shared_ptr<const ProgramAnalysis> findBySource(uint64_t SourceKey);

  /// Probe by fingerprint key.
  std::shared_ptr<const ProgramAnalysis> findByFingerprint(uint64_t FpKey);

  /// Inserts a fresh analysis under \p FpKey and memoizes \p SourceKey →
  /// \p FpKey. If \p FpKey is already present (two workers raced on the
  /// same miss) the existing entry wins and is returned, so all callers
  /// serve one canonical object.
  std::shared_ptr<const ProgramAnalysis>
  insert(uint64_t SourceKey, uint64_t FpKey,
         std::shared_ptr<const ProgramAnalysis> Entry);

  /// Adds only the source-hash memo (used when a parse revealed a
  /// fingerprint that was already cached).
  void aliasSource(uint64_t SourceKey, uint64_t FpKey);

  struct Stats {
    uint64_t Hits = 0;      ///< findBySource/findByFingerprint successes.
    uint64_t Misses = 0;    ///< Probes that found nothing.
    uint64_t Evictions = 0; ///< Entries LRU-evicted.
    size_t Entries = 0;     ///< Currently resident analyses.
    size_t Capacity = 0;
  };
  Stats stats() const;

  /// Resident fingerprint keys, hottest-first *within each shard* (shards
  /// are concatenated, so cross-shard order is approximate), capped at
  /// \p Max. Powers the `cachekeys` verb — the warm-cache handoff's
  /// verification hook.
  std::vector<uint64_t> hotFingerprints(size_t Max);

private:
  struct Shard {
    std::mutex Mutex;
    /// LRU order, most recent first; values are fingerprint keys.
    std::list<uint64_t> Lru;
    struct Slot {
      std::shared_ptr<const ProgramAnalysis> Entry;
      std::list<uint64_t>::iterator LruPos;
    };
    std::unordered_map<uint64_t, Slot> ByFingerprint;
    /// Bounded memo; cleared wholesale when it outgrows 4× the shard
    /// capacity (stale entries are harmless, unbounded growth is not).
    std::unordered_map<uint64_t, uint64_t> SourceToFp;
  };

  Shard &shardOf(uint64_t Key) {
    return *Shards[(Key >> 56) % Shards.size()];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
  size_t PerShardCapacity = 1;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0};
};

} // namespace service
} // namespace uspec

#endif // USPEC_SERVICE_CACHE_H
