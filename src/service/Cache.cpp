//===- Cache.cpp - Sharded LRU cache of analyzed programs -----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Cache.h"

#include <algorithm>

using namespace uspec;
using namespace uspec::service;

AnalysisCache::AnalysisCache(size_t Capacity, unsigned NumShards) {
  NumShards = std::clamp(NumShards, 1u, 64u);
  // Never hand a shard a zero budget — a cache of capacity 1 still caches.
  PerShardCapacity = std::max<size_t>(1, Capacity / NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const ProgramAnalysis>
AnalysisCache::findBySource(uint64_t SourceKey) {
  uint64_t FpKey = 0;
  {
    Shard &S = shardOf(SourceKey);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.SourceToFp.find(SourceKey);
    if (It == S.SourceToFp.end()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    FpKey = It->second;
  }
  // The fingerprint may live in a different shard; findByFingerprint does
  // its own hit/miss accounting (a stale memo counts as a miss).
  return findByFingerprint(FpKey);
}

std::shared_ptr<const ProgramAnalysis>
AnalysisCache::findByFingerprint(uint64_t FpKey) {
  Shard &S = shardOf(FpKey);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.ByFingerprint.find(FpKey);
  if (It == S.ByFingerprint.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruPos);
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second.Entry;
}

std::shared_ptr<const ProgramAnalysis>
AnalysisCache::insert(uint64_t SourceKey, uint64_t FpKey,
                      std::shared_ptr<const ProgramAnalysis> Entry) {
  {
    Shard &S = shardOf(FpKey);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.ByFingerprint.find(FpKey);
    if (It != S.ByFingerprint.end()) {
      // Lost a race on the same miss: keep the incumbent so every caller
      // serves one canonical object.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruPos);
      Entry = It->second.Entry;
    } else {
      S.Lru.push_front(FpKey);
      S.ByFingerprint.emplace(FpKey, Shard::Slot{Entry, S.Lru.begin()});
      while (S.ByFingerprint.size() > PerShardCapacity) {
        uint64_t Victim = S.Lru.back();
        S.Lru.pop_back();
        S.ByFingerprint.erase(Victim);
        Evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  aliasSource(SourceKey, FpKey);
  return Entry;
}

void AnalysisCache::aliasSource(uint64_t SourceKey, uint64_t FpKey) {
  Shard &S = shardOf(SourceKey);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.SourceToFp.size() >= 4 * PerShardCapacity)
    S.SourceToFp.clear();
  S.SourceToFp[SourceKey] = FpKey;
}

std::vector<uint64_t> AnalysisCache::hotFingerprints(size_t Max) {
  std::vector<uint64_t> Out;
  Out.reserve(std::min(Max, PerShardCapacity * Shards.size()));
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (uint64_t Key : S->Lru) {
      if (Out.size() >= Max)
        return Out;
      Out.push_back(Key);
    }
  }
  return Out;
}

AnalysisCache::Stats AnalysisCache::stats() const {
  Stats Out;
  Out.Hits = Hits.load(std::memory_order_relaxed);
  Out.Misses = Misses.load(std::memory_order_relaxed);
  Out.Evictions = Evictions.load(std::memory_order_relaxed);
  Out.Capacity = PerShardCapacity * Shards.size();
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Out.Entries += S->ByFingerprint.size();
  }
  return Out;
}
