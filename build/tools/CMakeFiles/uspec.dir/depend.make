# Empty dependencies file for uspec.
# This may be replaced when dependencies are built.
