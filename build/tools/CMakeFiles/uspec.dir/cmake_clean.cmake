file(REMOVE_RECURSE
  "CMakeFiles/uspec.dir/uspec.cpp.o"
  "CMakeFiles/uspec.dir/uspec.cpp.o.d"
  "uspec"
  "uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
