# Empty compiler generated dependencies file for eventgraph_tour.
# This may be replaced when dependencies are built.
