file(REMOVE_RECURSE
  "CMakeFiles/eventgraph_tour.dir/eventgraph_tour.cpp.o"
  "CMakeFiles/eventgraph_tour.dir/eventgraph_tour.cpp.o.d"
  "eventgraph_tour"
  "eventgraph_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventgraph_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
