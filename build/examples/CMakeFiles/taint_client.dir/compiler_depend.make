# Empty compiler generated dependencies file for taint_client.
# This may be replaced when dependencies are built.
