file(REMOVE_RECURSE
  "CMakeFiles/taint_client.dir/taint_client.cpp.o"
  "CMakeFiles/taint_client.dir/taint_client.cpp.o.d"
  "taint_client"
  "taint_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
