file(REMOVE_RECURSE
  "CMakeFiles/atlas_vs_uspec.dir/atlas_vs_uspec.cpp.o"
  "CMakeFiles/atlas_vs_uspec.dir/atlas_vs_uspec.cpp.o.d"
  "atlas_vs_uspec"
  "atlas_vs_uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_vs_uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
