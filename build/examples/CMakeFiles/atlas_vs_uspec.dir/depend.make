# Empty dependencies file for atlas_vs_uspec.
# This may be replaced when dependencies are built.
