file(REMOVE_RECURSE
  "CMakeFiles/typestate_client.dir/typestate_client.cpp.o"
  "CMakeFiles/typestate_client.dir/typestate_client.cpp.o.d"
  "typestate_client"
  "typestate_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typestate_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
