# Empty dependencies file for typestate_client.
# This may be replaced when dependencies are built.
