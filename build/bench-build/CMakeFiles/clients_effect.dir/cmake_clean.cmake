file(REMOVE_RECURSE
  "../bench/clients_effect"
  "../bench/clients_effect.pdb"
  "CMakeFiles/clients_effect.dir/clients_effect.cpp.o"
  "CMakeFiles/clients_effect.dir/clients_effect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clients_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
