# Empty dependencies file for clients_effect.
# This may be replaced when dependencies are built.
