file(REMOVE_RECURSE
  "../bench/tab3_example_specs"
  "../bench/tab3_example_specs.pdb"
  "CMakeFiles/tab3_example_specs.dir/tab3_example_specs.cpp.o"
  "CMakeFiles/tab3_example_specs.dir/tab3_example_specs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_example_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
