# Empty dependencies file for tab3_example_specs.
# This may be replaced when dependencies are built.
