# Empty dependencies file for fig7_precision_recall.
# This may be replaced when dependencies are built.
