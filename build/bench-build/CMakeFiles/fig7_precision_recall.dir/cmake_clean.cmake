file(REMOVE_RECURSE
  "../bench/fig7_precision_recall"
  "../bench/fig7_precision_recall.pdb"
  "CMakeFiles/fig7_precision_recall.dir/fig7_precision_recall.cpp.o"
  "CMakeFiles/fig7_precision_recall.dir/fig7_precision_recall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
