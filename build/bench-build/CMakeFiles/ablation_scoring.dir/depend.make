# Empty dependencies file for ablation_scoring.
# This may be replaced when dependencies are built.
