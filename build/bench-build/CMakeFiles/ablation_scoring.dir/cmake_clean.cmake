file(REMOVE_RECURSE
  "../bench/ablation_scoring"
  "../bench/ablation_scoring.pdb"
  "CMakeFiles/ablation_scoring.dir/ablation_scoring.cpp.o"
  "CMakeFiles/ablation_scoring.dir/ablation_scoring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
