# Empty dependencies file for tab7_atlas_comparison.
# This may be replaced when dependencies are built.
