file(REMOVE_RECURSE
  "../bench/tab7_atlas_comparison"
  "../bench/tab7_atlas_comparison.pdb"
  "CMakeFiles/tab7_atlas_comparison.dir/tab7_atlas_comparison.cpp.o"
  "CMakeFiles/tab7_atlas_comparison.dir/tab7_atlas_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_atlas_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
