file(REMOVE_RECURSE
  "../bench/tab56_specs_by_library"
  "../bench/tab56_specs_by_library.pdb"
  "CMakeFiles/tab56_specs_by_library.dir/tab56_specs_by_library.cpp.o"
  "CMakeFiles/tab56_specs_by_library.dir/tab56_specs_by_library.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab56_specs_by_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
