# Empty compiler generated dependencies file for tab56_specs_by_library.
# This may be replaced when dependencies are built.
