file(REMOVE_RECURSE
  "../bench/perf_pipeline"
  "../bench/perf_pipeline.pdb"
  "CMakeFiles/perf_pipeline.dir/perf_pipeline.cpp.o"
  "CMakeFiles/perf_pipeline.dir/perf_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
