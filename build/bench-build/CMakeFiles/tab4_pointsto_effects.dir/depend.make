# Empty dependencies file for tab4_pointsto_effects.
# This may be replaced when dependencies are built.
