file(REMOVE_RECURSE
  "../bench/tab4_pointsto_effects"
  "../bench/tab4_pointsto_effects.pdb"
  "CMakeFiles/tab4_pointsto_effects.dir/tab4_pointsto_effects.cpp.o"
  "CMakeFiles/tab4_pointsto_effects.dir/tab4_pointsto_effects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_pointsto_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
