file(REMOVE_RECURSE
  "CMakeFiles/clients_test.dir/clients_test.cpp.o"
  "CMakeFiles/clients_test.dir/clients_test.cpp.o.d"
  "clients_test"
  "clients_test.pdb"
  "clients_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
