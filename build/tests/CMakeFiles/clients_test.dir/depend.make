# Empty dependencies file for clients_test.
# This may be replaced when dependencies are built.
