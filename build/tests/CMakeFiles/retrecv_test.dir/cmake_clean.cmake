file(REMOVE_RECURSE
  "CMakeFiles/retrecv_test.dir/retrecv_test.cpp.o"
  "CMakeFiles/retrecv_test.dir/retrecv_test.cpp.o.d"
  "retrecv_test"
  "retrecv_test.pdb"
  "retrecv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrecv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
