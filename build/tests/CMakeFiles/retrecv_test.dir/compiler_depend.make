# Empty compiler generated dependencies file for retrecv_test.
# This may be replaced when dependencies are built.
