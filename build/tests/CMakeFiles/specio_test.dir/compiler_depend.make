# Empty compiler generated dependencies file for specio_test.
# This may be replaced when dependencies are built.
