file(REMOVE_RECURSE
  "CMakeFiles/specio_test.dir/specio_test.cpp.o"
  "CMakeFiles/specio_test.dir/specio_test.cpp.o.d"
  "specio_test"
  "specio_test.pdb"
  "specio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
