file(REMOVE_RECURSE
  "CMakeFiles/paperclaims_test.dir/paperclaims_test.cpp.o"
  "CMakeFiles/paperclaims_test.dir/paperclaims_test.cpp.o.d"
  "paperclaims_test"
  "paperclaims_test.pdb"
  "paperclaims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paperclaims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
