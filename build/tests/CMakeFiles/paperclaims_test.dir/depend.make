# Empty dependencies file for paperclaims_test.
# This may be replaced when dependencies are built.
