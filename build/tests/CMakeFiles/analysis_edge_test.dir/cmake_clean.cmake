file(REMOVE_RECURSE
  "CMakeFiles/analysis_edge_test.dir/analysis_edge_test.cpp.o"
  "CMakeFiles/analysis_edge_test.dir/analysis_edge_test.cpp.o.d"
  "analysis_edge_test"
  "analysis_edge_test.pdb"
  "analysis_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
