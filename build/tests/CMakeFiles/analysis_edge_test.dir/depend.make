# Empty dependencies file for analysis_edge_test.
# This may be replaced when dependencies are built.
