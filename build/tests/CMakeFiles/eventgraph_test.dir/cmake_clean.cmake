file(REMOVE_RECURSE
  "CMakeFiles/eventgraph_test.dir/eventgraph_test.cpp.o"
  "CMakeFiles/eventgraph_test.dir/eventgraph_test.cpp.o.d"
  "eventgraph_test"
  "eventgraph_test.pdb"
  "eventgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
