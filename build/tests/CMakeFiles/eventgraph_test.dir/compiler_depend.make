# Empty compiler generated dependencies file for eventgraph_test.
# This may be replaced when dependencies are built.
