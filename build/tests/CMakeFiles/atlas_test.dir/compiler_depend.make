# Empty compiler generated dependencies file for atlas_test.
# This may be replaced when dependencies are built.
