file(REMOVE_RECURSE
  "CMakeFiles/atlas_test.dir/atlas_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas_test.cpp.o.d"
  "atlas_test"
  "atlas_test.pdb"
  "atlas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
