# Empty dependencies file for pointsto_test.
# This may be replaced when dependencies are built.
