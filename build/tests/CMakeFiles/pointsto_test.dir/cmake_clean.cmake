file(REMOVE_RECURSE
  "CMakeFiles/pointsto_test.dir/pointsto_test.cpp.o"
  "CMakeFiles/pointsto_test.dir/pointsto_test.cpp.o.d"
  "pointsto_test"
  "pointsto_test.pdb"
  "pointsto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointsto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
