# Empty compiler generated dependencies file for dedup_test.
# This may be replaced when dependencies are built.
