file(REMOVE_RECURSE
  "CMakeFiles/dedup_test.dir/dedup_test.cpp.o"
  "CMakeFiles/dedup_test.dir/dedup_test.cpp.o.d"
  "dedup_test"
  "dedup_test.pdb"
  "dedup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
