file(REMOVE_RECURSE
  "CMakeFiles/specs_test.dir/specs_test.cpp.o"
  "CMakeFiles/specs_test.dir/specs_test.cpp.o.d"
  "specs_test"
  "specs_test.pdb"
  "specs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
