
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/uspec_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/pointsto/CMakeFiles/uspec_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uspec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/uspec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/eventgraph/CMakeFiles/uspec_eventgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/uspec_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/uspec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/uspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
