# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/specs_test[1]_include.cmake")
include("/root/repo/build/tests/pointsto_test[1]_include.cmake")
include("/root/repo/build/tests/eventgraph_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/atlas_test[1]_include.cmake")
include("/root/repo/build/tests/clients_test[1]_include.cmake")
include("/root/repo/build/tests/specio_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/retrecv_test[1]_include.cmake")
include("/root/repo/build/tests/dedup_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_edge_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/naming_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/paperclaims_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
