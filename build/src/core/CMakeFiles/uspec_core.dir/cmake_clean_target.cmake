file(REMOVE_RECURSE
  "libuspec_core.a"
)
