file(REMOVE_RECURSE
  "CMakeFiles/uspec_core.dir/Candidates.cpp.o"
  "CMakeFiles/uspec_core.dir/Candidates.cpp.o.d"
  "CMakeFiles/uspec_core.dir/Learner.cpp.o"
  "CMakeFiles/uspec_core.dir/Learner.cpp.o.d"
  "CMakeFiles/uspec_core.dir/Matching.cpp.o"
  "CMakeFiles/uspec_core.dir/Matching.cpp.o.d"
  "CMakeFiles/uspec_core.dir/Naming.cpp.o"
  "CMakeFiles/uspec_core.dir/Naming.cpp.o.d"
  "libuspec_core.a"
  "libuspec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
