# Empty compiler generated dependencies file for uspec_core.
# This may be replaced when dependencies are built.
