file(REMOVE_RECURSE
  "CMakeFiles/uspec_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/uspec_runtime.dir/Interpreter.cpp.o.d"
  "CMakeFiles/uspec_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/uspec_runtime.dir/Runtime.cpp.o.d"
  "libuspec_runtime.a"
  "libuspec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
