file(REMOVE_RECURSE
  "libuspec_runtime.a"
)
