# Empty dependencies file for uspec_runtime.
# This may be replaced when dependencies are built.
