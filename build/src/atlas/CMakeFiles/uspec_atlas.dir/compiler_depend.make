# Empty compiler generated dependencies file for uspec_atlas.
# This may be replaced when dependencies are built.
