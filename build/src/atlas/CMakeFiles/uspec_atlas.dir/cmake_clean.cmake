file(REMOVE_RECURSE
  "CMakeFiles/uspec_atlas.dir/Atlas.cpp.o"
  "CMakeFiles/uspec_atlas.dir/Atlas.cpp.o.d"
  "libuspec_atlas.a"
  "libuspec_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
