file(REMOVE_RECURSE
  "libuspec_atlas.a"
)
