file(REMOVE_RECURSE
  "libuspec_eventgraph.a"
)
