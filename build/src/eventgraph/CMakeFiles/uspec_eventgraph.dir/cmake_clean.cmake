file(REMOVE_RECURSE
  "CMakeFiles/uspec_eventgraph.dir/Dot.cpp.o"
  "CMakeFiles/uspec_eventgraph.dir/Dot.cpp.o.d"
  "CMakeFiles/uspec_eventgraph.dir/EventGraph.cpp.o"
  "CMakeFiles/uspec_eventgraph.dir/EventGraph.cpp.o.d"
  "libuspec_eventgraph.a"
  "libuspec_eventgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_eventgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
