# Empty compiler generated dependencies file for uspec_eventgraph.
# This may be replaced when dependencies are built.
