file(REMOVE_RECURSE
  "libuspec_support.a"
)
