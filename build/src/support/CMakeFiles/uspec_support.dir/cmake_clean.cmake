file(REMOVE_RECURSE
  "CMakeFiles/uspec_support.dir/Stats.cpp.o"
  "CMakeFiles/uspec_support.dir/Stats.cpp.o.d"
  "CMakeFiles/uspec_support.dir/Table.cpp.o"
  "CMakeFiles/uspec_support.dir/Table.cpp.o.d"
  "libuspec_support.a"
  "libuspec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
