# Empty dependencies file for uspec_support.
# This may be replaced when dependencies are built.
