file(REMOVE_RECURSE
  "CMakeFiles/uspec_ir.dir/IR.cpp.o"
  "CMakeFiles/uspec_ir.dir/IR.cpp.o.d"
  "CMakeFiles/uspec_ir.dir/Lowering.cpp.o"
  "CMakeFiles/uspec_ir.dir/Lowering.cpp.o.d"
  "libuspec_ir.a"
  "libuspec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
