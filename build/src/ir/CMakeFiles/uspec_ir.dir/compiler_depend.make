# Empty compiler generated dependencies file for uspec_ir.
# This may be replaced when dependencies are built.
