
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/uspec_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/uspec_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/Lowering.cpp" "src/ir/CMakeFiles/uspec_ir.dir/Lowering.cpp.o" "gcc" "src/ir/CMakeFiles/uspec_ir.dir/Lowering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/uspec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
