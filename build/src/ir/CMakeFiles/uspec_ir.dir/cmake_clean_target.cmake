file(REMOVE_RECURSE
  "libuspec_ir.a"
)
