# Empty dependencies file for uspec_lang.
# This may be replaced when dependencies are built.
