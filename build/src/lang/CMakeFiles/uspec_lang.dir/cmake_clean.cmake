file(REMOVE_RECURSE
  "CMakeFiles/uspec_lang.dir/Lexer.cpp.o"
  "CMakeFiles/uspec_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/uspec_lang.dir/Parser.cpp.o"
  "CMakeFiles/uspec_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/uspec_lang.dir/Printer.cpp.o"
  "CMakeFiles/uspec_lang.dir/Printer.cpp.o.d"
  "libuspec_lang.a"
  "libuspec_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
