file(REMOVE_RECURSE
  "libuspec_lang.a"
)
