file(REMOVE_RECURSE
  "CMakeFiles/uspec_model.dir/EdgeModel.cpp.o"
  "CMakeFiles/uspec_model.dir/EdgeModel.cpp.o.d"
  "CMakeFiles/uspec_model.dir/Features.cpp.o"
  "CMakeFiles/uspec_model.dir/Features.cpp.o.d"
  "libuspec_model.a"
  "libuspec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
