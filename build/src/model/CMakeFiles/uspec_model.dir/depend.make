# Empty dependencies file for uspec_model.
# This may be replaced when dependencies are built.
