file(REMOVE_RECURSE
  "libuspec_model.a"
)
