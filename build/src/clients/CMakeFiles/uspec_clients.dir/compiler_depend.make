# Empty compiler generated dependencies file for uspec_clients.
# This may be replaced when dependencies are built.
