file(REMOVE_RECURSE
  "CMakeFiles/uspec_clients.dir/Taint.cpp.o"
  "CMakeFiles/uspec_clients.dir/Taint.cpp.o.d"
  "CMakeFiles/uspec_clients.dir/Typestate.cpp.o"
  "CMakeFiles/uspec_clients.dir/Typestate.cpp.o.d"
  "libuspec_clients.a"
  "libuspec_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
