file(REMOVE_RECURSE
  "libuspec_clients.a"
)
