# Empty compiler generated dependencies file for uspec_corpus.
# This may be replaced when dependencies are built.
