file(REMOVE_RECURSE
  "CMakeFiles/uspec_corpus.dir/Api.cpp.o"
  "CMakeFiles/uspec_corpus.dir/Api.cpp.o.d"
  "CMakeFiles/uspec_corpus.dir/Dedup.cpp.o"
  "CMakeFiles/uspec_corpus.dir/Dedup.cpp.o.d"
  "CMakeFiles/uspec_corpus.dir/Generator.cpp.o"
  "CMakeFiles/uspec_corpus.dir/Generator.cpp.o.d"
  "CMakeFiles/uspec_corpus.dir/GroundTruth.cpp.o"
  "CMakeFiles/uspec_corpus.dir/GroundTruth.cpp.o.d"
  "CMakeFiles/uspec_corpus.dir/Profiles.cpp.o"
  "CMakeFiles/uspec_corpus.dir/Profiles.cpp.o.d"
  "libuspec_corpus.a"
  "libuspec_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
