file(REMOVE_RECURSE
  "libuspec_corpus.a"
)
