file(REMOVE_RECURSE
  "libuspec_specs.a"
)
