# Empty dependencies file for uspec_specs.
# This may be replaced when dependencies are built.
