
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specs/Spec.cpp" "src/specs/CMakeFiles/uspec_specs.dir/Spec.cpp.o" "gcc" "src/specs/CMakeFiles/uspec_specs.dir/Spec.cpp.o.d"
  "/root/repo/src/specs/SpecIO.cpp" "src/specs/CMakeFiles/uspec_specs.dir/SpecIO.cpp.o" "gcc" "src/specs/CMakeFiles/uspec_specs.dir/SpecIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/uspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
