file(REMOVE_RECURSE
  "CMakeFiles/uspec_specs.dir/Spec.cpp.o"
  "CMakeFiles/uspec_specs.dir/Spec.cpp.o.d"
  "CMakeFiles/uspec_specs.dir/SpecIO.cpp.o"
  "CMakeFiles/uspec_specs.dir/SpecIO.cpp.o.d"
  "libuspec_specs.a"
  "libuspec_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
