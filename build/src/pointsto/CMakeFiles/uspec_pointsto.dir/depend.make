# Empty dependencies file for uspec_pointsto.
# This may be replaced when dependencies are built.
