file(REMOVE_RECURSE
  "CMakeFiles/uspec_pointsto.dir/Analysis.cpp.o"
  "CMakeFiles/uspec_pointsto.dir/Analysis.cpp.o.d"
  "CMakeFiles/uspec_pointsto.dir/ConstraintSolver.cpp.o"
  "CMakeFiles/uspec_pointsto.dir/ConstraintSolver.cpp.o.d"
  "libuspec_pointsto.a"
  "libuspec_pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
