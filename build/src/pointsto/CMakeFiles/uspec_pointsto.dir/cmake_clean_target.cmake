file(REMOVE_RECURSE
  "libuspec_pointsto.a"
)
