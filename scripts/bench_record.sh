#!/usr/bin/env bash
#===- bench_record.sh - Record the repo's perf trajectory ----------------===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Runs the two machine-readable bench documents and writes them to the repo
# root as the committed perf baseline (ROADMAP item 5):
#
#   BENCH_pipeline.json  perf_pipeline --uspec_phase_json[=N]: per-phase
#                        PipelineStats at 1/2/4/8 threads + speedups.
#   BENCH_service.json   service_throughput --uspec_service_json[=N]:
#                        cold/warm QPS, hit rate and p50 at 1/2/4/8 workers.
#
# Re-run after a perf-relevant change and commit the diff; the JSON is
# normalized (fixed corpus seeds, fixed thread/worker ladders) so two runs
# on the same machine differ only in the timing numbers.
#
# Usage: scripts/bench_record.sh [build-dir] [pipeline-N] [service-N]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

BUILD=${1:-build}
PIPELINE_N=${2:-200}
SERVICE_N=${3:-128}
ROOT=$(cd "$(dirname "$0")/.." && pwd)

for bin in perf_pipeline service_throughput; do
  if [ ! -x "$BUILD/bench/$bin" ]; then
    echo "error: $BUILD/bench/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

echo "== perf_pipeline --uspec_phase_json=$PIPELINE_N"
"$BUILD/bench/perf_pipeline" "--uspec_phase_json=$PIPELINE_N" \
  > "$ROOT/BENCH_pipeline.json"

echo "== service_throughput --uspec_service_json=$SERVICE_N"
"$BUILD/bench/service_throughput" "--uspec_service_json=$SERVICE_N" \
  > "$ROOT/BENCH_service.json"

echo "wrote $ROOT/BENCH_pipeline.json and $ROOT/BENCH_service.json"
