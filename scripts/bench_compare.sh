#!/usr/bin/env bash
#===- bench_compare.sh - Gate candidate bench JSON against baselines -----===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Compares freshly recorded bench documents (candidate) against the
# committed baselines (BENCH_pipeline.json / BENCH_service.json) and fails
# when the candidate regresses past the tolerance:
#
#   BENCH_pipeline.json  phase_seconds.total per thread count must not grow
#                        by more than the tolerance; the events_overhead
#                        rows must stay within tolerance of the baseline AND
#                        the armed row within tolerance of the candidate's
#                        own disarmed row (arming the event log must never
#                        cost learn() wall-clock).
#   BENCH_service.json   cold_qps and warm_qps per worker count must not
#                        shrink by more than the tolerance; the hedged-tail
#                        rows must keep hedged p99 <= unhedged p99 (the
#                        candidate's own rows — the injected slow replica
#                        makes the margin structural, not noise), and per-
#                        mode p99 must not grow past the tolerance against
#                        the baseline.
#
# The gate is noise-aware, not a microbenchmark judge: shared CI runners
# jitter real time by double-digit percentages, so the default tolerance is
# a generous 25% and an absolute slack floor exempts sub-noise phase times
# entirely. Tune via environment:
#
#   USPEC_BENCH_TOLERANCE    relative regression allowed (default 0.25)
#   USPEC_BENCH_ABS_SLACK_S  absolute seconds always forgiven on phase
#                            totals (default 0.005) — a 2ms total that
#                            doubles is scheduler noise, not a regression
#
# Usage: scripts/bench_compare.sh <candidate-dir> [baseline-dir]
#   candidate-dir  directory holding the freshly recorded BENCH_*.json
#   baseline-dir   directory with the committed baselines (default: repo root)
#
#===----------------------------------------------------------------------===#
set -euo pipefail

CAND=${1:?usage: bench_compare.sh <candidate-dir> [baseline-dir]}
BASE=${2:-$(cd "$(dirname "$0")/.." && pwd)}
TOL=${USPEC_BENCH_TOLERANCE:-0.25}
ABS=${USPEC_BENCH_ABS_SLACK_S:-0.005}

for f in BENCH_pipeline.json BENCH_service.json; do
  for d in "$BASE" "$CAND"; do
    if [ ! -f "$d/$f" ]; then
      echo "error: $d/$f not found" >&2
      exit 2
    fi
  done
done

python3 - "$BASE" "$CAND" "$TOL" "$ABS" <<'EOF'
import json, sys

base_dir, cand_dir, tol, abs_slack = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), float(sys.argv[4]))

def load(d, name):
    with open(f"{d}/{name}") as f:
        return json.load(f)

failures = []

def check(label, base, cand, kind):
    """kind='time': regression when cand > base*(1+tol) + abs_slack.
    kind='rate': regression when cand < base*(1-tol)."""
    if base <= 0:
        return
    if kind == "time":
        limit = base * (1 + tol) + abs_slack
        bad = cand > limit
        delta = (cand - base) / base
    else:
        limit = base * (1 - tol)
        bad = cand < limit
        delta = (cand - base) / base
    mark = "FAIL" if bad else "ok"
    print(f"  {mark:4} {label:40} base={base:<12g} cand={cand:<12g} "
          f"({delta:+.1%})")
    if bad:
        failures.append(label)

print(f"tolerance={tol:.0%}  abs_slack={abs_slack}s")

print("pipeline (phase_seconds.total per thread count):")
bp = load(base_dir, "BENCH_pipeline.json")
cp = load(cand_dir, "BENCH_pipeline.json")
base_runs = {r["stats"]["threads"]: r for r in bp["runs"]}
for run in cp["runs"]:
    th = run["stats"]["threads"]
    if th not in base_runs:
        continue
    check(f"total@{th}t",
          base_runs[th]["stats"]["phase_seconds"]["total"],
          run["stats"]["phase_seconds"]["total"], "time")

print("event log (learn total with the log disarmed/armed):")
# Keyed get: documents recorded before the events_overhead rows existed
# still gate cleanly.
ev_b, ev_c = bp.get("events_overhead"), cp.get("events_overhead")
if ev_c and ev_b:
    check("events_disarmed_total", ev_b["disarmed_seconds"],
          ev_c["disarmed_seconds"], "time")
    check("events_armed_total", ev_b["armed_seconds"],
          ev_c["armed_seconds"], "time")
if ev_c:
    # Structural, machine-independent: arming the event log must not cost
    # learn() wall-clock beyond noise of the same document's disarmed run.
    check("events_armed_vs_disarmed", ev_c["disarmed_seconds"],
          ev_c["armed_seconds"], "time")

print("service (cold/warm QPS per worker count):")
bs = load(base_dir, "BENCH_service.json")
cs = load(cand_dir, "BENCH_service.json")
base_runs = {r["workers"]: r for r in bs["runs"]}
for run in cs["runs"]:
    w = run["workers"]
    if w not in base_runs:
        continue
    check(f"cold_qps@{w}w", base_runs[w]["cold_qps"], run["cold_qps"], "rate")
    check(f"warm_qps@{w}w", base_runs[w]["warm_qps"], run["warm_qps"], "rate")

print("router (routed cold/warm QPS per replica count):")
base_router = {r["replicas"]: r for r in bs.get("router_runs", [])}
for run in cs.get("router_runs", []):
    n = run["replicas"]
    if n not in base_router:
        continue
    check(f"router_cold_qps@{n}r", base_router[n]["cold_qps"],
          run["cold_qps"], "rate")
    check(f"router_warm_qps@{n}r", base_router[n]["warm_qps"],
          run["warm_qps"], "rate")

print("hedged tail (routed p99 with one slow replica):")
# Keyed lookups skip modes absent from the baseline, so documents recorded
# before the hedged rows existed still gate cleanly.
base_hedged = {r["mode"]: r for r in bs.get("hedged_runs", [])}
cand_hedged = {r["mode"]: r for r in cs.get("hedged_runs", [])}
for mode, run in sorted(cand_hedged.items()):
    if mode in base_hedged:
        check(f"p99@{mode}", base_hedged[mode]["p99_ms"] / 1e3,
              run["p99_ms"] / 1e3, "time")
if "hedged" in cand_hedged and "unhedged" in cand_hedged:
    hedged = cand_hedged["hedged"]
    unhedged = cand_hedged["unhedged"]
    bad = hedged["p99_ms"] > unhedged["p99_ms"]
    mark = "FAIL" if bad else "ok"
    print(f"  {mark:4} {'hedged p99 <= unhedged p99':40} "
          f"unhedged={unhedged['p99_ms']:g}ms hedged={hedged['p99_ms']:g}ms")
    if bad:
        failures.append("hedged_p99_vs_unhedged")
    if hedged.get("hedged_wins", 0) <= 0:
        print("  FAIL hedged run recorded no hedged_wins")
        failures.append("hedged_wins")

if failures:
    print(f"bench regression past tolerance: {', '.join(failures)}")
    sys.exit(1)
print("bench within tolerance")
EOF
