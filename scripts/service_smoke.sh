#!/usr/bin/env bash
#===- service_smoke.sh - End-to-end smoke test of the query service ------===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Trains an artifact, starts `uspec serve` on a Unix socket, hits it with
# concurrent `uspec query` clients, and asserts that every response is
# byte-identical to the one-shot `uspec analyze --json` output for the same
# (program, artifact) pair — the service determinism contract, exercised
# through the real binary and the real transport. Finishes with a `shutdown`
# and verifies the server drains cleanly (exit 0).
#
# Usage: scripts/service_smoke.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}
NPROGS=8
NCLIENTS=4

WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== train"
"$USPEC" gen --profile java -n 30 -o "$WORK/corpus" --seed 11
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/run.uspb" --seed 11

echo "== reference: one-shot analyze --json"
for i in $(seq 0 $((NPROGS - 1))); do
  "$USPEC" analyze "$WORK/corpus/prog$i.mini" --model "$WORK/run.uspb" \
    --json > "$WORK/expected.$i.json"
done

echo "== serve"
"$USPEC" serve --model "$WORK/run.uspb" --socket "$WORK/uspec.sock" \
  --workers 4 &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec.sock" ] || {
  echo "FAIL: server socket never appeared" >&2
  exit 1
}

echo "== $NCLIENTS concurrent clients x $NPROGS programs"
pids=()
for c in $(seq 1 "$NCLIENTS"); do
  (
    for i in $(seq 0 $((NPROGS - 1))); do
      "$USPEC" query --socket "$WORK/uspec.sock" \
        analyze "$WORK/corpus/prog$i.mini" > "$WORK/client$c.$i.json"
    done
  ) &
  pids+=("$!")
done
for p in "${pids[@]}"; do
  wait "$p"
done

fail=0
for c in $(seq 1 "$NCLIENTS"); do
  for i in $(seq 0 $((NPROGS - 1))); do
    if ! cmp -s "$WORK/expected.$i.json" "$WORK/client$c.$i.json"; then
      echo "FAIL: client $c / program $i differs from analyze --json:" >&2
      diff "$WORK/expected.$i.json" "$WORK/client$c.$i.json" >&2 || true
      fail=1
    fi
  done
done
[ "$fail" -eq 0 ] && echo "all $((NCLIENTS * NPROGS)) responses byte-identical"

echo "== stats"
stats=$("$USPEC" query --socket "$WORK/uspec.sock" stats)
echo "$stats"
echo "$stats" | grep -q '"hit_rate":' || {
  echo "FAIL: stats payload missing hit_rate" >&2
  fail=1
}

echo "== shutdown + clean drain"
"$USPEC" query --socket "$WORK/uspec.sock" shutdown
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited with status $rc after shutdown" >&2
  fail=1
fi

echo "== fault-injected serve: worker death must not break byte-identity"
USPEC_FAULT=service.worker:1 "$USPEC" serve --model "$WORK/run.uspb" \
  --socket "$WORK/uspec2.sock" --workers 2 2>/dev/null &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec2.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec2.sock" ] || {
  echo "FAIL: fault-injected server socket never appeared" >&2
  exit 1
}
# First request hits the armed fault: a structured internal error, answered
# (not a hung or dropped connection). --retries only retries transient
# errors, so the internal error surfaces on the first attempt.
first=$("$USPEC" query --socket "$WORK/uspec2.sock" --retries 2 specs \
  2>&1 || true)
if ! echo "$first" | grep -q '"kind":"internal"'; then
  echo "FAIL: dying worker did not answer a structured internal error:" >&2
  echo "$first" >&2
  fail=1
fi
# The replacement worker serves byte-identical payloads.
for i in 0 1 2; do
  "$USPEC" query --socket "$WORK/uspec2.sock" \
    analyze "$WORK/corpus/prog$i.mini" > "$WORK/afterfault.$i.json"
  if ! cmp -s "$WORK/expected.$i.json" "$WORK/afterfault.$i.json"; then
    echo "FAIL: program $i differs from analyze --json after worker death" >&2
    fail=1
  fi
done
"$USPEC" query --socket "$WORK/uspec2.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: fault-injected server exited with status $rc" >&2
  fail=1
fi
[ "$fail" -eq 0 ] && echo "worker death: answered, recovered, byte-identical"

if [ "$fail" -eq 0 ]; then
  echo "service smoke: OK"
else
  echo "service smoke: FAILED" >&2
fi
exit "$fail"
