#!/usr/bin/env bash
#===- fault_sweep.sh - USPEC_FAULT sweep over the real binary ------------===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Drives `uspec` under injected faults (USPEC_FAULT=<site>:<nth>[:action],
# see DESIGN.md §10) and asserts the recovery contracts:
#
#   artifact.write*  kill -9 during the artifact write leaves either no
#                    artifact or a complete one, never a torn file, and
#                    `train --resume` converges to the uninterrupted bytes;
#   analysis.step /  a per-program soft fault quarantines that program
#   learn.analyze    (reported in --stats) instead of sinking the run;
#   service.worker   a worker death mid-request yields a structured
#                    `internal` error, the pool self-heals, and the server
#                    still answers and drains cleanly;
#   journal.append   kill -9 during `uspec ingest` leaves the previous
#                    journal intact, and re-running the ingest converges to
#                    the uninterrupted journal bytes;
#   service.reload.load  a failed hot-swap load answers `reload_failed`
#                    and keeps serving the old model; the next reload
#                    succeeds.
#   router.respawn   a soft fault swallows the supervisor's first respawn
#                    attempt; the deterministic backoff schedule retries
#                    and the second attempt cold-starts the replica, after
#                    which routed answers are byte-identical to one-shot
#                    analyze.
#
# solver.step is exercised in-process by the Fault ctest suites (the
# constraint solver has no standalone CLI path).
#
# Usage: scripts/fault_sweep.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}

WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail=0

echo "== corpus + uninterrupted baseline"
"$USPEC" gen --profile java -n 12 -o "$WORK/corpus" --seed 19
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/base.uspb" --seed 19

echo "== kill -9 at every artifact.write site, then train --resume"
for site in artifact.write artifact.write.data artifact.write.fsync \
            artifact.write.rename; do
  out="$WORK/killed.uspb"
  rm -f "$out" "$out.tmp"
  rc=0
  USPEC_FAULT="$site:1:kill" "$USPEC" train "$WORK/corpus"/*.mini \
    -o "$out" --seed 19 >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 137 ]; then
    echo "FAIL: $site: expected exit 137 (injected kill), got $rc" >&2
    fail=1
  fi
  # Never a torn artifact: absent, or complete and loadable.
  if [ -f "$out" ] && ! "$USPEC" info "$out" >/dev/null 2>&1; then
    echo "FAIL: $site: kill left a torn artifact" >&2
    fail=1
  fi
  "$USPEC" train "$WORK/corpus"/*.mini -o "$out" --seed 19 --resume \
    >/dev/null 2>&1
  if ! cmp -s "$out" "$WORK/base.uspb"; then
    echo "FAIL: $site: resumed artifact differs from uninterrupted run" >&2
    fail=1
  fi
  if [ -f "$out.tmp" ]; then
    echo "FAIL: $site: stale temp survived resume" >&2
    fail=1
  fi
  echo "   $site: kill -> resume OK"
done

echo "== per-program quarantine (soft analysis fault, injected throw)"
for spec in analysis.step:1:soft learn.analyze:0; do
  stats=$(USPEC_FAULT="$spec" "$USPEC" train "$WORK/corpus"/*.mini \
    -o "$WORK/quarantine.uspb" --seed 19 --threads 1 --stats 2>&1 >/dev/null)
  if ! echo "$stats" | grep -q '"quarantined_count": 1'; then
    echo "FAIL: $spec: expected exactly one quarantined program; stats:" >&2
    echo "$stats" | tail -1 >&2
    fail=1
  else
    echo "   $spec: quarantined 1 program, run survived"
  fi
done

echo "== service.worker death: structured error, pool self-heals"
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/run.uspb" --seed 19 \
  >/dev/null 2>&1
USPEC_FAULT=service.worker:1 "$USPEC" serve --model "$WORK/run.uspb" \
  --socket "$WORK/uspec.sock" --workers 2 2>/dev/null &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec.sock" ] || {
  echo "FAIL: server socket never appeared" >&2
  exit 1
}

first=$("$USPEC" query --socket "$WORK/uspec.sock" specs 2>&1 || true)
if ! echo "$first" | grep -q '"kind":"internal"'; then
  echo "FAIL: expected structured internal error from dying worker, got:" >&2
  echo "$first" >&2
  fail=1
fi
second=$("$USPEC" query --socket "$WORK/uspec.sock" \
  analyze "$WORK/corpus/prog0.mini" 2>&1 || true)
if ! echo "$second" | grep -q '"alias_count"'; then
  echo "FAIL: server did not recover after worker death, got:" >&2
  echo "$second" >&2
  fail=1
fi
stats=$("$USPEC" query --socket "$WORK/uspec.sock" stats)
if ! echo "$stats" | grep -q '"worker_deaths":1'; then
  echo "FAIL: stats did not record the worker death: $stats" >&2
  fail=1
fi
"$USPEC" query --socket "$WORK/uspec.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited with status $rc after worker death + drain" >&2
  fail=1
fi
[ "$fail" -eq 0 ] && echo "   worker death -> internal error -> recovery OK"

echo "== kill -9 at journal.append: ingest converges"
# Uninterrupted baseline: two ingest generations.
"$USPEC" ingest "$WORK/corpus"/prog{0,1,2,3}.mini -j "$WORK/base.uspj" \
  >/dev/null 2>&1
"$USPEC" ingest "$WORK/corpus"/prog{4,5}.mini -j "$WORK/base.uspj" \
  >/dev/null 2>&1
# Killed variant: the second generation dies at the append site.
"$USPEC" ingest "$WORK/corpus"/prog{0,1,2,3}.mini -j "$WORK/killed.uspj" \
  >/dev/null 2>&1
rc=0
USPEC_FAULT=journal.append:1:kill "$USPEC" ingest \
  "$WORK/corpus"/prog{4,5}.mini -j "$WORK/killed.uspj" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
  echo "FAIL: journal.append: expected exit 137 (injected kill), got $rc" >&2
  fail=1
fi
# The previous journal must still be loadable (train validates it), and
# re-running the ingest must converge to the uninterrupted bytes.
if ! "$USPEC" train --journal "$WORK/killed.uspj" -o "$WORK/jtrain.uspb" \
  --seed 19 >/dev/null 2>&1; then
  echo "FAIL: journal.append: kill left an unloadable journal" >&2
  fail=1
fi
"$USPEC" ingest "$WORK/corpus"/prog{4,5}.mini -j "$WORK/killed.uspj" \
  >/dev/null 2>&1
if ! cmp -s "$WORK/killed.uspj" "$WORK/base.uspj"; then
  echo "FAIL: journal.append: re-ingest differs from uninterrupted journal" >&2
  fail=1
fi
if [ -f "$WORK/killed.uspj.tmp" ]; then
  echo "FAIL: journal.append: stale temp survived" >&2
  fail=1
fi
echo "   journal.append: kill -> re-ingest converges OK"

echo "== service.reload.load fault: reload fails, old model keeps serving"
# Nth=2: the site's first hit is the startup --model load; the second is
# the first hot-swap attempt.
USPEC_FAULT=service.reload.load:2 "$USPEC" serve --model "$WORK/run.uspb" \
  --socket "$WORK/uspec3.sock" --workers 2 2>/dev/null &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec3.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec3.sock" ] || {
  echo "FAIL: reload-fault server socket never appeared" >&2
  exit 1
}
"$USPEC" analyze "$WORK/corpus/prog0.mini" --model "$WORK/run.uspb" --json \
  > "$WORK/reload.expected.json"
first=$("$USPEC" query --socket "$WORK/uspec3.sock" reload 2>&1 || true)
if ! echo "$first" | grep -q '"kind":"reload_failed"'; then
  echo "FAIL: armed reload did not answer reload_failed, got:" >&2
  echo "$first" >&2
  fail=1
fi
"$USPEC" query --socket "$WORK/uspec3.sock" \
  analyze "$WORK/corpus/prog0.mini" > "$WORK/reload.after.json" || true
if ! cmp -s "$WORK/reload.expected.json" "$WORK/reload.after.json"; then
  echo "FAIL: old model stopped serving byte-identically after failed" \
       "reload" >&2
  fail=1
fi
second=$("$USPEC" query --socket "$WORK/uspec3.sock" reload 2>&1 || true)
if ! echo "$second" | grep -q '"generation"'; then
  echo "FAIL: reload after disarmed fault did not succeed: $second" >&2
  fail=1
fi
stats=$("$USPEC" query --socket "$WORK/uspec3.sock" stats)
if ! echo "$stats" | grep -q '"reloads":1'; then
  echo "FAIL: stats did not count exactly the successful reload: $stats" >&2
  fail=1
fi
"$USPEC" query --socket "$WORK/uspec3.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: reload-fault server exited with status $rc" >&2
  fail=1
fi
[ "$fail" -eq 0 ] && echo "   reload fault -> reload_failed -> recovery OK"

echo "== distrib.* faults: worker death/spawn failure keep byte-identity"
# base.uspb is the uninterrupted single-process artifact from the top of
# the sweep; every distributed run below must converge to its exact bytes.
for spec in distrib.worker.analyze:0:kill distrib.worker.extract:0:kill \
            distrib.spawn:0:throw; do
  out="$WORK/distrib_fault.uspb"
  rm -f "$out"
  rc=0
  USPEC_FAULT="$spec" "$USPEC" train "$WORK/corpus"/*.mini -o "$out" \
    --seed 19 --distributed 2 > "$WORK/distrib_fault.log" 2>&1 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: $spec: distributed train exited $rc" >&2
    tail -5 "$WORK/distrib_fault.log" >&2
    fail=1
  elif ! cmp -s "$out" "$WORK/base.uspb"; then
    echo "FAIL: $spec: artifact differs from single-process bytes" >&2
    fail=1
  else
    echo "   $spec: converged byte-identical"
  fi
done
# The injected worker deaths must be visible in the run summary, not
# silently absorbed.
if ! grep -q "reassigned\|demoted\|in-process" "$WORK/distrib_fault.log"; then
  echo "FAIL: distrib fault left no recovery note in the summary" >&2
  fail=1
fi

echo "== router.respawn fault: supervisor backoff survives a lost attempt"
# No replica process exists at $WORK/f0.sock; the supervisor must create
# it. router.respawn:1:soft swallows the first attempt, so recovery proves
# the backoff rescheduled and the second attempt did the spawn.
RESPAWN_CMD="$USPEC serve --socket {socket} --model $WORK/run.uspb"
USPEC_FAULT=router.respawn:1:soft "$USPEC" route \
  --socket "$WORK/frouter.sock" --replicas "$WORK/f0.sock" \
  --supervise --respawn-cmd "$RESPAWN_CMD" --probe-interval-ms 100 \
  --respawn-seed 11 2>/dev/null &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/frouter.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/frouter.sock" ] || {
  echo "FAIL: supervised router socket never appeared" >&2
  exit 1
}
"$USPEC" analyze "$WORK/corpus/prog0.mini" --model "$WORK/run.uspb" --json \
  > "$WORK/frouter.expected.json"
ok=0
for _ in $(seq 100); do
  if "$USPEC" query --socket "$WORK/frouter.sock" --retries 3 \
      analyze "$WORK/corpus/prog0.mini" > "$WORK/frouter.got.json" \
      2>/dev/null &&
      cmp -s "$WORK/frouter.expected.json" "$WORK/frouter.got.json"; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "FAIL: router.respawn: supervisor never recovered the replica" >&2
  fail=1
fi
stats=$("$USPEC" query --socket "$WORK/frouter.sock" stats)
# The swallowed attempt still counts, so recovery implies at least two.
if ! echo "$stats" | grep -Eq '"respawns":[2-9]'; then
  echo "FAIL: router.respawn: expected >= 2 respawn attempts: $stats" >&2
  fail=1
fi
if ! echo "$stats" | grep -Eq '"rejoins":[1-9]'; then
  echo "FAIL: router.respawn: replica never rejoined the ring: $stats" >&2
  fail=1
fi
if ! echo "$stats" | grep -Eq '"probe_failures":[1-9]'; then
  echo "FAIL: router.respawn: down replica produced no probe failures" >&2
  fail=1
fi
"$USPEC" query --socket "$WORK/frouter.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: router.respawn: router exited with status $rc" >&2
  fail=1
fi
# The broadcast shutdown drains the respawned replica (not our child).
for _ in $(seq 50); do
  [ -S "$WORK/f0.sock" ] || break
  sleep 0.1
done
if [ -S "$WORK/f0.sock" ]; then
  echo "FAIL: router.respawn: replica still alive after shutdown" >&2
  pkill -9 -f "serve --socket $WORK/f0.sock" || true
  fail=1
fi
[ "$fail" -eq 0 ] && echo "   router.respawn: lost attempt -> backoff -> recovery OK"

if [ "$fail" -eq 0 ]; then
  echo "fault sweep: OK"
else
  echo "fault sweep: FAILED" >&2
fi
exit "$fail"
