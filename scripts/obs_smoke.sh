#!/usr/bin/env bash
#===- obs_smoke.sh - Fleet-wide observability smoke ----------------------===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# End-to-end smoke of the DESIGN.md §16 layer through the real binary:
#
#   1. A supervised 2-replica routed fleet runs under --trace and --events;
#      routed queries carry a trace_id.
#   2. kill -9 of a replica: the structured event log records the recovery
#      in order — replica_down -> respawn -> warm_replay -> rejoin — with a
#      gap-free seq, and `uspec obs top` still renders the fleet snapshot.
#   3. `train --distributed 2` under USPEC_TRACE writes one shard per
#      process (coordinator + workers) and stays byte-identical to an
#      untraced single-process train.
#   4. `uspec obs stitch` merges the router, replica and training shards
#      into one valid Chrome-trace document with >= 3 distinct pids,
#      process_name metadata, and s/f flow events linking cross-process
#      request spans.
#
# Usage: scripts/obs_smoke.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do
    kill "$p" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT
fail=0

echo "== corpus + model"
"$USPEC" gen --profile java -n 12 -o "$WORK/corpus" --seed 31
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/model.uspb" --seed 31 \
  --threads 1 2>/dev/null

echo "== supervised routed fleet under --trace + --events"
for i in 1 2; do
  "$USPEC" serve --model "$WORK/model.uspb" --socket "$WORK/r$i.sock" \
    --workers 2 --trace "$WORK/replica$i.json" 2>/dev/null &
  PIDS+=($!)
done
for _ in $(seq 100); do
  [ -S "$WORK/r1.sock" ] && [ -S "$WORK/r2.sock" ] && break
  sleep 0.1
done
"$USPEC" route --socket "$WORK/router.sock" \
  --replicas "$WORK/r1.sock,$WORK/r2.sock" \
  --supervise --model "$WORK/model.uspb" --probe-interval-ms 100 \
  --trace "$WORK/router.json" --events "$WORK/events.jsonl" \
  2>"$WORK/router.err" &
ROUTER=$!
PIDS+=("$ROUTER")
for _ in $(seq 100); do
  [ -S "$WORK/router.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/router.sock" ] || {
  echo "FAIL: router socket never appeared" >&2
  exit 1
}

for i in 0 1 2 3; do
  "$USPEC" query --socket "$WORK/router.sock" --trace-id "smoke-$i" \
    analyze "$WORK/corpus/prog$i.mini" >/dev/null
done

echo "== kill -9 a replica: event log records the recovery in order"
R2PID=${PIDS[1]}
kill -9 "$R2PID" 2>/dev/null || true
for _ in $(seq 200); do
  grep -q '"type":"rejoin"' "$WORK/events.jsonl" 2>/dev/null && break
  sleep 0.1
done
grep -q '"type":"rejoin"' "$WORK/events.jsonl" || {
  echo "FAIL: replica never rejoined (no rejoin event)" >&2
  cat "$WORK/events.jsonl" >&2 || true
  exit 1
}
python3 - "$WORK/events.jsonl" <<'EOF' || fail=1
import json, sys
want = ["replica_down", "respawn", "warm_replay", "rejoin"]
seen, last_seq = [], -1
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    ev = json.loads(line)   # every line must parse
    assert ev["v"] == 1, f"unknown schema version: {ev}"
    assert ev["seq"] == last_seq + 1, f"seq gap at {ev}"
    last_seq = ev["seq"]
    if ev["type"] in want and ev["type"] not in seen:
        seen.append(ev["type"])
if seen != want:
    print(f"FAIL: recovery events out of order: {seen}", file=sys.stderr)
    sys.exit(1)
print(f"   {len(seen)} recovery events in order, seq gap-free to {last_seq}")
EOF

echo "== obs top renders the fleet snapshot"
top=$("$USPEC" obs top --socket "$WORK/router.sock")
echo "$top" | grep -q 'fleet: 2 replicas' || {
  echo "FAIL: obs top missing fleet header:" >&2
  echo "$top" >&2
  fail=1
}

echo "== obs events filters by type"
"$USPEC" obs events "$WORK/events.jsonl" --type rejoin \
  | grep -q '"type":"rejoin"' || {
  echo "FAIL: obs events --type rejoin found nothing" >&2
  fail=1
}

echo "== drain the fleet (replicas + router write their trace shards)"
"$USPEC" query --socket "$WORK/router.sock" shutdown >/dev/null
rc=0
wait "$ROUTER" || rc=$?
[ "$rc" -eq 0 ] || {
  echo "FAIL: router exited with status $rc after shutdown" >&2
  fail=1
}
PIDS=()

echo "== distributed train under USPEC_TRACE: per-process shards, bytes equal"
USPEC_TRACE="$WORK/train.json" "$USPEC" train "$WORK/corpus"/*.mini \
  -o "$WORK/dist.uspb" --seed 31 --distributed 2 2>/dev/null
cmp -s "$WORK/model.uspb" "$WORK/dist.uspb" || {
  echo "FAIL: traced distributed train differs from untraced baseline" >&2
  fail=1
}
worker_shards=("$WORK"/train.json.*)
[ -e "${worker_shards[0]}" ] || {
  echo "FAIL: distributed train wrote no per-worker trace shards" >&2
  fail=1
}

echo "== obs stitch merges fleet + training shards"
# replica2's shard died with the kill -9 (traces are written at exit);
# stitch the router, the surviving replica, and the training processes.
"$USPEC" obs stitch "$WORK/merged.json" "$WORK/router.json" \
  "$WORK/replica1.json" "$WORK/train.json" "${worker_shards[@]}" \
  2>"$WORK/stitch.log"
cat "$WORK/stitch.log"
python3 - "$WORK/merged.json" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
pids = {e["pid"] for e in events}
metas = [e for e in events if e.get("ph") == "M"
         and e.get("name") == "process_name"]
starts = [e for e in events if e.get("ph") == "s"]
finishes = [e for e in events if e.get("ph") == "f"]
assert len(pids) >= 3, f"expected >= 3 processes, got {sorted(pids)}"
assert len(metas) == len(pids), "every pid needs process_name metadata"
assert starts and finishes, "stitched trace has no flow events"
cross = {(s["id"]) for s in starts} & {(f["id"]) for f in finishes}
assert cross, "no matched s/f flow pair"
print(f"   {len(pids)} processes, {len(starts)} flow links: OK")
EOF

if [ "$fail" -eq 0 ]; then
  echo "obs smoke: OK"
else
  echo "obs smoke: FAILED" >&2
fi
exit "$fail"
