#!/usr/bin/env bash
#===- trace_smoke.sh - End-to-end smoke test of the observability layer --===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Exercises PR-5 observability through the real binary: `--trace` on learn /
# train / analyze emits valid Chrome-trace-event JSON (validated with
# `python3 -m json.tool` and checked for the expected span names), trained
# artifacts are byte-identical with tracing on or off, and a traced
# `uspec serve` answers the `metrics` verb with Prometheus text exposition,
# echoes trace_id, and writes the slow-request log.
#
# Usage: scripts/trace_smoke.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}

WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
fail=0

echo "== corpus"
"$USPEC" gen --profile java -n 12 -o "$WORK/corpus" --seed 11

echo "== learn --trace emits valid trace JSON"
"$USPEC" learn "$WORK/corpus"/*.mini --stats --trace "$WORK/learn.json" \
  -o "$WORK/specs.txt" 2>/dev/null
python3 -m json.tool "$WORK/learn.json" >/dev/null || {
  echo "FAIL: learn trace is not valid JSON" >&2
  fail=1
}
for span in learn learn.phase1_analyze learn.phase3_extract learn.program \
            analysis.run; do
  grep -q "\"name\":\"$span\"" "$WORK/learn.json" || {
    echo "FAIL: learn trace missing span '$span'" >&2
    fail=1
  }
done

echo "== USPEC_TRACE env var arms tracing too"
USPEC_TRACE="$WORK/env.json" "$USPEC" analyze "$WORK/corpus/prog0.mini" \
  >/dev/null
python3 -m json.tool "$WORK/env.json" >/dev/null || {
  echo "FAIL: USPEC_TRACE trace is not valid JSON" >&2
  fail=1
}

echo "== train artifacts byte-identical with tracing on/off, 1 and 8 threads"
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/plain.uspb" --seed 11 \
  --threads 1 2>/dev/null
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/traced1.uspb" --seed 11 \
  --threads 1 --trace "$WORK/t1.json" 2>/dev/null
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/traced8.uspb" --seed 11 \
  --threads 8 --trace "$WORK/t8.json" 2>/dev/null
for v in traced1 traced8; do
  cmp -s "$WORK/plain.uspb" "$WORK/$v.uspb" || {
    echo "FAIL: $v.uspb differs from untraced artifact" >&2
    fail=1
  }
done
python3 -m json.tool "$WORK/t8.json" >/dev/null || {
  echo "FAIL: 8-thread train trace is not valid JSON" >&2
  fail=1
}

echo "== traced serve: metrics verb, trace_id echo, slow log"
"$USPEC" serve --model "$WORK/plain.uspb" --socket "$WORK/uspec.sock" \
  --workers 2 --trace "$WORK/serve.json" --slow-ms 0 2>"$WORK/serve.err" &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec.sock" ] || {
  echo "FAIL: server socket never appeared" >&2
  exit 1
}

"$USPEC" query --socket "$WORK/uspec.sock" --trace-id smoke-1 \
  analyze "$WORK/corpus/prog0.mini" >/dev/null

metrics=$("$USPEC" query --socket "$WORK/uspec.sock" metrics)
for series in '# TYPE uspec_request_latency_seconds histogram' \
              '# TYPE uspec_queue_wait_seconds histogram' \
              'uspec_analyze_seconds_count' \
              'uspec_requests_admitted_total'; do
  echo "$metrics" | grep -q "$series" || {
    echo "FAIL: metrics exposition missing '$series'" >&2
    fail=1
  }
done

echo "== shutdown writes the serve trace"
"$USPEC" query --socket "$WORK/uspec.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited with status $rc after shutdown" >&2
  fail=1
fi
python3 -m json.tool "$WORK/serve.json" >/dev/null || {
  echo "FAIL: serve trace is not valid JSON" >&2
  fail=1
}
grep -q '"name":"service.request"' "$WORK/serve.json" || {
  echo "FAIL: serve trace missing service.request span" >&2
  fail=1
}
grep -q '"name":"service.queue_wait"' "$WORK/serve.json" || {
  echo "FAIL: serve trace missing service.queue_wait span" >&2
  fail=1
}
# --slow-ms 0 disables the log; re-check with a 0ms-threshold impossible, so
# assert the armed path instead: every request is slower than -1... slow-ms
# only accepts >= 0, and 0 means off, so spot-check the log stayed empty.
if grep -q 'uspec-slow' "$WORK/serve.err"; then
  echo "FAIL: slow log fired with --slow-ms 0 (disabled)" >&2
  fail=1
fi

echo "== serve --slow-ms 1: a heavyweight analyze lands in the slow log"
# A 4000-statement program takes hundreds of ms to analyze — two orders of
# magnitude over the 1ms threshold on any machine this runs on.
{
  echo 'class Main { def main() {'
  for i in $(seq 1 4000); do
    echo "var x$i = new Cache(); x$i.put(\"k\", $i);" \
         "var y$i = x$i.getIfPresent(\"k\");"
  done
  echo '} }'
} > "$WORK/big.mini"
"$USPEC" serve --model "$WORK/plain.uspb" --socket "$WORK/uspec2.sock" \
  --workers 1 --slow-ms 1 2>"$WORK/serve2.err" &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec2.sock" ] && break
  sleep 0.1
done
"$USPEC" query --socket "$WORK/uspec2.sock" --trace-id "slow-0" \
  analyze "$WORK/big.mini" >/dev/null
"$USPEC" query --socket "$WORK/uspec2.sock" shutdown >/dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
[ "$rc" -eq 0 ] || {
  echo "FAIL: slow-log server exited with status $rc" >&2
  fail=1
}
if ! grep -q 'uspec-slow verb=analyze' "$WORK/serve2.err"; then
  echo "FAIL: slow log never fired with --slow-ms 1" >&2
  cat "$WORK/serve2.err" >&2
  fail=1
fi
if ! grep -q 'trace_id=slow-' "$WORK/serve2.err"; then
  echo "FAIL: slow log lines missing trace_id" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "trace smoke: OK"
else
  echo "trace smoke: FAILED" >&2
fi
exit "$fail"
