#!/usr/bin/env bash
#===- distrib_smoke.sh - Distributed train + routed serving smoke --------===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# End-to-end smoke of the DESIGN.md §14 subsystem through the real binary:
#
#   1. `train --distributed 4` (self-spawned workers over Unix sockets) is
#      byte-identical to single-process `train` on the same corpus+seed.
#   2. A worker killed mid-analyze (USPEC_FAULT=distrib.worker.analyze:0:kill)
#      still converges to the identical bytes via shard reassignment.
#   3. `uspec route` in front of two serve replicas: routed `query analyze`
#      responses are byte-identical to one-shot `analyze --json`; stats fan
#      out; a broadcast `reload` swaps both replicas live.
#   4. kill -9 of a replica: the routed query answers `replica_down` once,
#      and `query --retries` deterministically fails over to the survivor.
#   5. A routed `shutdown` broadcast drains replicas and router cleanly.
#   6. `route --supervise --respawn-cmd`: the supervisor cold-starts the
#      replica, survives a kill -9 (respawn + warm rejoin, byte-identical
#      answers before/after), and the final shutdown drains the respawned
#      replica it owns.
#
# Usage: scripts/distrib_smoke.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do
    kill "$p" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail=0

echo "== corpus + single-process baseline"
"$USPEC" gen --profile java -n 20 -o "$WORK/corpus" --seed 23
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/single.uspb" --seed 23

echo "== train --distributed 4: byte-identity"
"$USPEC" train "$WORK/corpus"/*.mini -o "$WORK/dist.uspb" --seed 23 \
  --distributed 4 > "$WORK/dist.log" 2>&1
grep -q "distributed:" "$WORK/dist.log" || {
  echo "FAIL: no distributed summary line" >&2
  fail=1
}
if ! cmp -s "$WORK/single.uspb" "$WORK/dist.uspb"; then
  echo "FAIL: 4-worker artifact differs from single-process bytes" >&2
  fail=1
else
  echo "   4 workers byte-identical"
fi

echo "== worker killed mid-analyze: reassignment converges"
USPEC_FAULT=distrib.worker.analyze:0:kill "$USPEC" train \
  "$WORK/corpus"/*.mini -o "$WORK/killed.uspb" --seed 23 --distributed 2 \
  > "$WORK/killed.log" 2>&1
if ! cmp -s "$WORK/single.uspb" "$WORK/killed.uspb"; then
  echo "FAIL: artifact after worker kill differs from baseline" >&2
  fail=1
else
  echo "   kill -> reassignment byte-identical"
fi

echo "== routed serving: 2 replicas behind uspec route"
for i in 0 1; do
  "$USPEC" serve --model "$WORK/single.uspb" --socket "$WORK/r$i.sock" \
    --workers 2 2>/dev/null &
  PIDS+=("$!")
done
R0=${PIDS[0]}
R1=${PIDS[1]}
for _ in $(seq 100); do
  [ -S "$WORK/r0.sock" ] && [ -S "$WORK/r1.sock" ] && break
  sleep 0.1
done
"$USPEC" route --socket "$WORK/router.sock" \
  --replicas "$WORK/r0.sock,$WORK/r1.sock" 2>/dev/null &
ROUTER=$!
PIDS+=("$ROUTER")
for _ in $(seq 100); do
  [ -S "$WORK/router.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/router.sock" ] || {
  echo "FAIL: router socket never appeared" >&2
  exit 1
}

echo "== routed queries match one-shot analyze --json"
for i in 0 1 2 3; do
  "$USPEC" analyze "$WORK/corpus/prog$i.mini" --model "$WORK/single.uspb" \
    --json > "$WORK/expected.$i.json"
  "$USPEC" query --socket "$WORK/router.sock" \
    analyze "$WORK/corpus/prog$i.mini" > "$WORK/routed.$i.json"
  if ! cmp -s "$WORK/expected.$i.json" "$WORK/routed.$i.json"; then
    echo "FAIL: routed response $i differs from analyze --json" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] && echo "   4 routed responses byte-identical"

echo "== stats fan-out"
stats=$("$USPEC" query --socket "$WORK/router.sock" stats)
echo "$stats" | grep -q '"router"' || {
  echo "FAIL: aggregated stats missing router section" >&2
  fail=1
}
echo "$stats" | grep -q "r1.sock" || {
  echo "FAIL: aggregated stats missing replica entry" >&2
  fail=1
}

echo "== broadcast reload (live model swap on every replica)"
reload=$("$USPEC" query --socket "$WORK/router.sock" reload \
  "$WORK/single.uspb")
echo "$reload" | grep -q '"reloaded":2' || {
  echo "FAIL: broadcast reload did not confirm both replicas: $reload" >&2
  fail=1
}

echo "== replica kill -9: structured replica_down + deterministic failover"
kill -9 "$R1" 2>/dev/null || true
wait "$R1" 2>/dev/null || true
# With --retries, the transient replica_down answer is retried and the ring
# walk (now skipping the dead replica) lands every program on the survivor.
for i in 0 1 2 3; do
  "$USPEC" query --socket "$WORK/router.sock" --retries 3 \
    analyze "$WORK/corpus/prog$i.mini" > "$WORK/failover.$i.json"
  if ! cmp -s "$WORK/expected.$i.json" "$WORK/failover.$i.json"; then
    echo "FAIL: post-failover response $i differs" >&2
    fail=1
  fi
done
stats=$("$USPEC" query --socket "$WORK/router.sock" stats)
echo "$stats" | grep -q '"down":\[1\]' || {
  echo "FAIL: router stats do not report the dead replica: $stats" >&2
  fail=1
}
[ "$fail" -eq 0 ] && echo "   failover byte-identical, dead replica reported"

echo "== routed shutdown drains the fleet"
"$USPEC" query --socket "$WORK/router.sock" shutdown > /dev/null
rc=0
wait "$ROUTER" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: router exited with status $rc after shutdown" >&2
  fail=1
fi
rc=0
wait "$R0" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: replica exited with status $rc after broadcast shutdown" >&2
  fail=1
fi
PIDS=()

echo "== supervised router: cold start -> kill -9 -> respawn -> rejoin"
# The supervisor owns the replica outright: no replica process exists yet;
# the first failed probe respawns it via the {socket} command template.
RESPAWN_CMD="$USPEC serve --socket {socket} --model $WORK/single.uspb"
"$USPEC" route --socket "$WORK/sup_router.sock" \
  --replicas "$WORK/sup0.sock" --supervise \
  --respawn-cmd "$RESPAWN_CMD" --probe-interval-ms 100 --respawn-seed 7 \
  2>/dev/null &
SUP=$!
PIDS+=("$SUP")
for _ in $(seq 100); do
  [ -S "$WORK/sup_router.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/sup_router.sock" ] || {
  echo "FAIL: supervised router socket never appeared" >&2
  exit 1
}
# Routed answers must converge to the baseline bytes once the supervisor
# brings the replica up.
ok=0
for _ in $(seq 100); do
  if "$USPEC" query --socket "$WORK/sup_router.sock" --retries 3 \
      analyze "$WORK/corpus/prog0.mini" > "$WORK/sup.before.json" \
      2>/dev/null &&
      cmp -s "$WORK/expected.0.json" "$WORK/sup.before.json"; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "FAIL: supervisor never brought the replica up" >&2
  fail=1
else
  echo "   cold start: supervisor spawned the replica, bytes match"
fi

# kill -9 the supervised replica (found by its socket argument); the
# supervisor must respawn it and answers must stay byte-identical.
pkill -9 -f "serve --socket $WORK/sup0.sock" || true
sleep 0.2
ok=0
for _ in $(seq 100); do
  if "$USPEC" query --socket "$WORK/sup_router.sock" --retries 3 \
      analyze "$WORK/corpus/prog0.mini" > "$WORK/sup.after.json" \
      2>/dev/null &&
      cmp -s "$WORK/expected.0.json" "$WORK/sup.after.json"; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ "$ok" -ne 1 ]; then
  echo "FAIL: supervisor did not recover the killed replica" >&2
  fail=1
else
  echo "   kill -9: respawned + rejoined, bytes identical"
fi
stats=$("$USPEC" query --socket "$WORK/sup_router.sock" stats)
echo "$stats" | grep -Eq '"respawns":[1-9]' || {
  echo "FAIL: router stats report no respawns: $stats" >&2
  fail=1
}
echo "$stats" | grep -Eq '"rejoins":[1-9]' || {
  echo "FAIL: router stats report no rejoins: $stats" >&2
  fail=1
}

"$USPEC" query --socket "$WORK/sup_router.sock" shutdown > /dev/null
rc=0
wait "$SUP" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: supervised router exited with status $rc" >&2
  fail=1
fi
# The broadcast shutdown drains the supervised replica too (it is not our
# child — poll its socket until it unlinks on clean exit).
for _ in $(seq 50); do
  [ -S "$WORK/sup0.sock" ] || break
  sleep 0.1
done
if [ -S "$WORK/sup0.sock" ]; then
  echo "FAIL: supervised replica still alive after broadcast shutdown" >&2
  pkill -9 -f "serve --socket $WORK/sup0.sock" || true
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "distrib smoke FAILED" >&2
  exit 1
fi
echo "distrib smoke OK"
