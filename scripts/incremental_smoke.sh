#!/usr/bin/env bash
#===- incremental_smoke.sh - Incremental learning + live reload, E2E -----===#
#
# Part of the USpec reproduction (PLDI 2019). MIT license.
#
# Drives the whole DESIGN.md §12 loop through the real binary:
#
#   ingest -> train --journal -> ingest Δ -> warm train (spec-level diff)
#     -> replay byte-identity vs full retrain (at 1 and 8 threads)
#     -> serve --model, concurrent clients through >= 3 reloads
#     -> per-generation byte-identity vs `analyze --json`, zero failures
#     -> SIGHUP reload + model_reloads_total in stats
#
# Usage: scripts/incremental_smoke.sh [path/to/uspec]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

USPEC=${1:-build/tools/uspec}
SEED=23

WORK=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail=0

echo "== ingest generation 1, train full"
"$USPEC" gen --profile java -n 16 -o "$WORK/corpus" --seed "$SEED"
"$USPEC" ingest "$WORK/corpus"/prog{0,1,2,3,4,5,6,7}.mini \
  -j "$WORK/corpus.uspj"
"$USPEC" train --journal "$WORK/corpus.uspj" -o "$WORK/run.uspb" \
  --seed "$SEED" 2> "$WORK/train1.log"
grep -q "(full," "$WORK/train1.log" || {
  echo "FAIL: first journal train was not a full run" >&2
  fail=1
}

echo "== same journal again: up to date, artifact untouched"
cp "$WORK/run.uspb" "$WORK/run.before"
"$USPEC" train --journal "$WORK/corpus.uspj" -o "$WORK/run.uspb" \
  --seed "$SEED" 2> "$WORK/train2.log"
grep -q "up to date" "$WORK/train2.log" || {
  echo "FAIL: unchanged journal did not report up to date" >&2
  fail=1
}
cmp -s "$WORK/run.uspb" "$WORK/run.before" || {
  echo "FAIL: up-to-date run rewrote the artifact" >&2
  fail=1
}

echo "== ingest generation 2, warm train emits a quantified diff"
"$USPEC" ingest "$WORK/corpus"/prog{8,9,10,11}.mini -j "$WORK/corpus.uspj"
"$USPEC" train --journal "$WORK/corpus.uspj" -o "$WORK/run.uspb" \
  --seed "$SEED" 2> "$WORK/train3.log"
grep -q "(warm, 4 of 12" "$WORK/train3.log" || {
  echo "FAIL: second train was not a 4-entry warm delta:" >&2
  cat "$WORK/train3.log" >&2
  fail=1
}
grep -q '^diff: {"added":' "$WORK/train3.log" || {
  echo "FAIL: warm train printed no spec-level diff" >&2
  fail=1
}

echo "== replay byte-identity vs full retrain, 1 and 8 threads"
"$USPEC" train "$WORK/corpus"/prog{0,1,2,3,4,5,6,7,8,9,10,11}.mini \
  -o "$WORK/flat.uspb" --seed "$SEED" 2>/dev/null
"$USPEC" select "$WORK/flat.uspb" -o "$WORK/flat.txt" 2>/dev/null
for threads in 1 8; do
  "$USPEC" train --journal "$WORK/corpus.uspj" -o "$WORK/replay$threads.uspb" \
    --replay --seed "$SEED" --threads "$threads" 2>/dev/null
  "$USPEC" select "$WORK/replay$threads.uspb" -o "$WORK/replay$threads.txt" \
    2>/dev/null
  cmp -s "$WORK/replay$threads.txt" "$WORK/flat.txt" || {
    echo "FAIL: replay specs at $threads threads differ from full retrain" >&2
    fail=1
  }
done
cmp -s "$WORK/replay1.uspb" "$WORK/replay8.uspb" || {
  echo "FAIL: replay artifact differs between 1 and 8 threads" >&2
  fail=1
}
echo "   replay == full retrain at 1 and 8 threads"

echo "== lineage in info"
"$USPEC" info "$WORK/run.uspb" | grep -q "journal lineage: generation 2" || {
  echo "FAIL: info does not print the journal lineage" >&2
  fail=1
}

echo "== serve: concurrent clients through >= 3 reloads"
# Two generations to swap between; per-generation expected answers come
# from one-shot `analyze --json` (the byte-identity oracle).
GEN1="$WORK/run.before"   # generation 1 artifact
GEN2="$WORK/run.uspb"     # generation 2 artifact (warm)
NPROGS=6
for i in $(seq 0 $((NPROGS - 1))); do
  "$USPEC" analyze "$WORK/corpus/prog$i.mini" --model "$GEN1" --json \
    > "$WORK/expect.g1.$i.json"
  "$USPEC" analyze "$WORK/corpus/prog$i.mini" --model "$GEN2" --json \
    > "$WORK/expect.g2.$i.json"
done

"$USPEC" serve --model "$GEN1" --socket "$WORK/uspec.sock" --workers 4 \
  2> "$WORK/serve.log" &
SERVER=$!
for _ in $(seq 100); do
  [ -S "$WORK/uspec.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/uspec.sock" ] || {
  echo "FAIL: server socket never appeared" >&2
  exit 1
}

pids=()
for c in 1 2 3; do
  (
    for round in 1 2 3 4; do
      for i in $(seq 0 $((NPROGS - 1))); do
        "$USPEC" query --socket "$WORK/uspec.sock" --retries 3 \
          analyze "$WORK/corpus/prog$i.mini" \
          > "$WORK/client$c.$round.$i.json" || exit 1
      done
    done
  ) &
  pids+=("$!")
done

# Three reloads while the clients run: gen2 via the protocol verb, gen1 via
# the verb, gen2 via SIGHUP re-reading --model (now pointing at GEN2's
# path, which serve re-reads from its original --model path — use the verb
# for the explicit paths and SIGHUP for the configured one).
sleep 0.2
"$USPEC" query --socket "$WORK/uspec.sock" reload "$GEN2" > /dev/null
sleep 0.2
"$USPEC" query --socket "$WORK/uspec.sock" reload "$GEN1" > /dev/null
sleep 0.2
kill -HUP "$SERVER" # re-reads --model ($GEN1)
sleep 0.2
"$USPEC" query --socket "$WORK/uspec.sock" reload "$GEN2" > /dev/null

dropped=0
for p in "${pids[@]}"; do
  wait "$p" || dropped=1
done
if [ "$dropped" -ne 0 ]; then
  echo "FAIL: a client saw a failed/dropped request during reloads" >&2
  fail=1
fi

# Every answer must be byte-identical to one generation's oracle.
mismatch=0
for c in 1 2 3; do
  for round in 1 2 3 4; do
    for i in $(seq 0 $((NPROGS - 1))); do
      got="$WORK/client$c.$round.$i.json"
      if ! cmp -s "$got" "$WORK/expect.g1.$i.json" &&
         ! cmp -s "$got" "$WORK/expect.g2.$i.json"; then
        echo "FAIL: client $c round $round prog $i matches neither" \
             "generation's analyze --json" >&2
        mismatch=1
      fi
    done
  done
done
[ "$mismatch" -eq 0 ] &&
  echo "   $((3 * 4 * NPROGS)) answers, every one byte-identical to a generation oracle"
[ "$mismatch" -ne 0 ] && fail=1

echo "== stats: model generation + reload counter"
stats=$("$USPEC" query --socket "$WORK/uspec.sock" stats)
echo "$stats" | grep -q '"model":{"generation":2' || {
  echo "FAIL: stats model generation is not 2: $stats" >&2
  fail=1
}
echo "$stats" | grep -q '"reloads":4' || {
  echo "FAIL: stats did not count 4 reloads (3 verbs + SIGHUP): $stats" >&2
  fail=1
}
# Capture first, grep second: `query | grep -q` under pipefail is flaky —
# grep exits at the first match and the client dies of EPIPE mid-write.
metrics=$("$USPEC" query --socket "$WORK/uspec.sock" metrics)
echo "$metrics" | grep -q '^uspec_model_reloads_total 4' || {
  echo "FAIL: metrics missing uspec_model_reloads_total 4" >&2
  fail=1
}

echo "== shutdown + clean drain"
"$USPEC" query --socket "$WORK/uspec.sock" shutdown > /dev/null
rc=0
wait "$SERVER" || rc=$?
SERVER=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited with status $rc" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "incremental smoke: OK"
else
  echo "incremental smoke: FAILED" >&2
fi
exit "$fail"
